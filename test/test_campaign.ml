(* Campaign DSL: churn-model distribution properties, failure-model
   behaviour, matrix enumeration/seeding, parallel byte-identity, golden
   figure cells, and the pinned quick-matrix digest. *)

module Rng = Smrp_rng.Rng
module Churn = Smrp_experiments.Churn
module Failure_model = Smrp_experiments.Failure_model
module Campaign = Smrp_experiments.Campaign
module Scenario = Smrp_experiments.Scenario
module Figures = Smrp_experiments.Figures
module Metrics = Smrp_obs.Metrics
module Report = Smrp_obs.Report
module Waxman = Smrp_topology.Waxman
module Tree = Smrp_core.Tree
module Failure = Smrp_core.Failure
module Spf = Smrp_core.Spf
module Case = Smrp_check.Case
module Gen = Smrp_check.Gen
module Shrink = Smrp_check.Shrink

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* -- Churn models -------------------------------------------------------- *)

let models =
  [
    ("static", Churn.Static { group_size = 20 });
    ( "flash",
      Churn.Flash_crowd { crowds = 5; mean_size = 6.0; spread = 2.0; mean_lifetime = 25.0 } );
    ("diurnal", Churn.Diurnal { waves = 3; wave_size = 9 });
    ("heavy", Churn.Heavy_tail { arrivals = 30; alpha = 2.5; x_min = 5.0 });
  ]

let churn_deterministic () =
  List.iter
    (fun (name, model) ->
      let s1 = Churn.schedule model (Rng.create 7) ~n:80 ~source:3 ~horizon:100.0 in
      let s2 = Churn.schedule model (Rng.create 7) ~n:80 ~source:3 ~horizon:100.0 in
      check (name ^ " same schedule") true (s1 = s2);
      let s3 = Churn.schedule model (Rng.create 8) ~n:80 ~source:3 ~horizon:100.0 in
      check (name ^ " seed matters") true (name = "static" || s1 <> s3))
    models

let churn_sorted_and_well_formed () =
  List.iter
    (fun (name, model) ->
      let events = Churn.schedule model (Rng.create 11) ~n:60 ~source:0 ~horizon:100.0 in
      let rec sorted = function
        | { Churn.at = a; _ } :: ({ Churn.at = b; _ } :: _ as rest) ->
            a <= b && sorted rest
        | _ -> true
      in
      check (name ^ " sorted by time") true (sorted events);
      check
        (name ^ " never touches the source")
        true
        (List.for_all
           (fun { Churn.op; _ } ->
             match op with Churn.Join v | Churn.Leave v -> v <> 0)
           events);
      (* A member joins before it leaves, and never joins twice while in. *)
      let joined = Hashtbl.create 16 in
      let ok = ref true in
      List.iter
        (fun { Churn.op; _ } ->
          match op with
          | Churn.Join v ->
              if Hashtbl.mem joined v then ok := false else Hashtbl.replace joined v ()
          | Churn.Leave v ->
              if Hashtbl.mem joined v then Hashtbl.remove joined v else ok := false)
        events;
      check (name ^ " join/leave pairing") true !ok)
    models

let flash_burst_sizes_geometric () =
  (* Mean of the raw geometric draws tracks the configured mean. *)
  let mean_size = 6.0 in
  let model =
    Churn.Flash_crowd { crowds = 400; mean_size; spread = 0.1; mean_lifetime = 1.0 }
  in
  let _, stats =
    Churn.schedule_with_stats model (Rng.create 23) ~n:4000 ~source:0 ~horizon:10_000.0
  in
  check_int "one draw per crowd" 400 (List.length stats.Churn.burst_sizes);
  let sum = List.fold_left (fun a s -> a + s) 0 stats.Churn.burst_sizes in
  let mean = float_of_int sum /. 400.0 in
  check "geometric mean within 15%" true (abs_float (mean -. mean_size) < 0.15 *. mean_size);
  check "all draws positive" true (List.for_all (fun s -> s >= 1) stats.Churn.burst_sizes)

let heavy_tail_lifetimes_pareto () =
  (* Pareto(alpha, x_min) has mean alpha*x_min/(alpha-1) for alpha > 1. *)
  let alpha = 2.5 and x_min = 5.0 in
  let model = Churn.Heavy_tail { arrivals = 4000; alpha; x_min } in
  let _, stats =
    Churn.schedule_with_stats model (Rng.create 31) ~n:8000 ~source:0 ~horizon:1.0e9
  in
  check_int "one lifetime per arrival" 4000 (List.length stats.Churn.lifetimes);
  check "lifetimes >= x_min" true (List.for_all (fun l -> l >= x_min) stats.Churn.lifetimes);
  let sum = List.fold_left ( +. ) 0.0 stats.Churn.lifetimes in
  let mean = sum /. 4000.0 in
  let expected = alpha *. x_min /. (alpha -. 1.0) in
  check "pareto mean within 15%" true (abs_float (mean -. expected) < 0.15 *. expected)

let sampler_moments () =
  let rng = Rng.create 5 in
  let n = 20_000 in
  let gsum = ref 0 in
  for _ = 1 to n do
    gsum := !gsum + Churn.geometric rng ~mean:4.0
  done;
  let gmean = float_of_int !gsum /. float_of_int n in
  check "geometric sampler mean" true (abs_float (gmean -. 4.0) < 0.2);
  let psum = ref 0.0 in
  for _ = 1 to n do
    psum := !psum +. Churn.pareto rng ~alpha:3.0 ~x_min:2.0
  done;
  let pmean = !psum /. float_of_int n in
  check "pareto sampler mean" true (abs_float (pmean -. 3.0) < 0.25)

let diurnal_balance () =
  (* Every wave drains exactly the cohort it admitted: joins = leaves, both
     per schedule and in the final membership count. *)
  List.iter
    (fun seed ->
      let model = Churn.Diurnal { waves = 4; wave_size = 12 } in
      let events, stats =
        Churn.schedule_with_stats model (Rng.create seed) ~n:70 ~source:1 ~horizon:200.0
      in
      check "joins = leaves" true (stats.Churn.joins = stats.Churn.leaves);
      let net =
        List.fold_left
          (fun acc { Churn.op; _ } ->
            match op with Churn.Join _ -> acc + 1 | Churn.Leave _ -> acc - 1)
          0 events
      in
      check_int "net membership zero" 0 net)
    [ 1; 2; 3; 17 ]

(* -- Failure models ------------------------------------------------------ *)

let tree_of_waxman seed =
  let w = Waxman.generate ~link_delay:`Unit (Rng.create seed) ~n:40 ~alpha:0.3 ~beta:0.3 in
  let g = w.Waxman.graph in
  let members = List.init 12 (fun i -> 3 * (i + 1) mod 40) in
  let members = List.sort_uniq compare (List.filter (fun v -> v <> 0) members) in
  let tree = Spf.build g ~source:0 ~members in
  (g, tree)

let failure_models_deterministic_and_sane () =
  let g, tree = tree_of_waxman 3 in
  List.iter
    (fun model ->
      let name = Failure_model.name model in
      let draw seed =
        let ws = Failure_model.create_ws () in
        Failure_model.draw ws model (Rng.create seed) g ~tree
      in
      let f1 = draw 9 and f2 = draw 9 in
      check (name ^ " deterministic") true (f1 = f2);
      match f1 with
      | None -> Alcotest.failf "%s drew nothing" name
      | Some f ->
          check (name ^ " never kills the source") true (Failure.node_ok f 0);
          check
            (name ^ " disrupted bounded by members")
            true
            (Failure_model.disrupted tree f <= Tree.member_count tree))
    [
      Failure_model.Independent { events = 2; elements = 2 };
      Failure_model.Correlated { events = 2; burst = 3 };
      Failure_model.Regional { events = 2; radius = 1 };
      Failure_model.Cascading { events = 2; depth = 3 };
      Failure_model.Adversarial { events = 2; budget = 2; passes = 1 };
    ]

let adversarial_beats_random () =
  (* The greedy worst-case placement must disrupt at least as many members
     as a random draw of the same budget — on every topology tried. *)
  List.iter
    (fun seed ->
      let g, tree = tree_of_waxman seed in
      let ws = Failure_model.create_ws () in
      let adv =
        match
          Failure_model.draw ws
            (Failure_model.Adversarial { events = 1; budget = 2; passes = 1 })
            (Rng.create 1) g ~tree
        with
        | Some f -> Failure_model.disrupted tree f
        | None -> Alcotest.fail "no adversarial draw"
      in
      let rnd =
        match
          Failure_model.draw ws
            (Failure_model.Independent { events = 1; elements = 2 })
            (Rng.create 1) g ~tree
        with
        | Some f -> Failure_model.disrupted tree f
        | None -> 0
      in
      check "adversarial >= random same budget" true (adv >= rnd);
      check "adversarial disrupts someone" true (adv >= 1))
    [ 3; 4; 5; 6 ]

(* -- Scenario.run_many dedup --------------------------------------------- *)

let run_many_dedup () =
  let base = { Scenario.default with Scenario.seed = 5; n = 40; group_size = 8 } in
  let other = { base with Scenario.seed = 6 } in
  let configs = [ base; other; base; base; other ] in
  let results = Scenario.run_many ~jobs:2 configs in
  check_int "one result per occurrence" 5 (List.length results);
  let direct = List.map Scenario.run configs in
  check "same results as the plain map" true
    (List.for_all2
       (fun a b -> Scenario.aggregates a = Scenario.aggregates b && a.Scenario.members = b.Scenario.members)
       results direct);
  (* Shared results are physically shared: the duplicate config was
     evaluated once. *)
  check "duplicates share one evaluation" true
    (List.nth results 0 == List.nth results 2);
  (* Metric totals count occurrences, not unique configs. *)
  let m = Metrics.create () in
  ignore (Scenario.run_many ~jobs:2 ~metrics:m configs : Scenario.t list);
  let runs =
    match List.assoc "scenario.runs" (Metrics.snapshot m) with
    | Metrics.Counter_value c -> c
    | _ -> -1
  in
  check_int "metrics per occurrence" 5 runs

(* -- Matrix enumeration and seeding -------------------------------------- *)

let cells_dedup_and_seed () =
  let spec =
    {
      Campaign.quick with
      Campaign.topologies =
        Campaign.quick.Campaign.topologies @ [ List.hd Campaign.quick.Campaign.topologies ];
    }
  in
  (* The repeated topology axis value collapses: same cell count as quick. *)
  check_int "dedup collapses repeated axis values"
    (List.length (Campaign.cells Campaign.quick))
    (List.length (Campaign.cells spec));
  let cells = Campaign.cells Campaign.quick in
  check_int "quick matrix is 3x3x2x3" 54 (List.length cells);
  (* Cell seeds depend only on the cell's own name, not enumeration order. *)
  let c0 = List.hd cells and c1 = List.nth cells 1 in
  check "distinct cells, distinct seeds" true
    (Campaign.cell_seed Campaign.quick c0 <> Campaign.cell_seed Campaign.quick c1);
  let reversed = { Campaign.quick with Campaign.protocols = List.rev Campaign.quick.Campaign.protocols } in
  let find name cs = List.find (fun c -> c.Campaign.c_name = name) cs in
  let name = c0.Campaign.c_name in
  check "seed survives axis reordering" true
    (Campaign.cell_seed Campaign.quick (find name cells)
    = Campaign.cell_seed reversed (find name (Campaign.cells reversed)))

let matrix_parser () =
  (match Campaign.spec_of_matrix "topo=waxman:30; churn=flash,heavy; fail=adversarial:2; proto=smrp:0.2,spf; instances=2; horizon=50; seed=9" with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok spec ->
      check_int "one topology" 1 (List.length spec.Campaign.topologies);
      check_string "label drops the colon" "waxman30" (fst (List.hd spec.Campaign.topologies));
      check_int "two churns" 2 (List.length spec.Campaign.churns);
      check_int "two protocols" 2 (List.length spec.Campaign.protocols);
      check_int "instances" 2 spec.Campaign.instances;
      check "horizon" true (spec.Campaign.horizon = 50.0);
      check_int "seed" 9 spec.Campaign.seed;
      check_int "cells" 4 (List.length (Campaign.cells spec)));
  (match Campaign.spec_of_matrix "figs=7,10" with
  | Error msg -> Alcotest.failf "figs parse failed: %s" msg
  | Ok spec -> check_int "two figures" 2 (List.length spec.Campaign.figures));
  let bad s =
    match Campaign.spec_of_matrix s with Ok _ -> Alcotest.failf "accepted %S" s | Error _ -> ()
  in
  bad "nonsense";
  bad "topo=hypercube";
  bad "fail=adversarial:x";
  bad "instances=0";
  bad "figs=11"

(* -- The pinned quick campaign ------------------------------------------- *)

(* One quick run shared across the pinning assertions (it is the expensive
   part of this file). *)
let quick_report = lazy (Campaign.run ~jobs:1 Campaign.quick)

(* The golden digest of the quick matrix: byte-pins cell enumeration order,
   per-cell seeding, every churn/failure draw, and the report encoding.
   If an intentional change moves it, regenerate with:
     dune exec bin/smrp_cli.exe -- campaign --quick --summary   *)
let quick_digest_pin = "ae2cb304a9780ba9256acbc9022bd641"

let quick_digest_pinned () =
  check_string "pinned digest" quick_digest_pin (Campaign.digest (Lazy.force quick_report))

let quick_parallel_identity () =
  let r4 = Campaign.run ~jobs:4 Campaign.quick in
  check_string "jobs=1 and jobs=4 byte-identical"
    (Report.to_string (Lazy.force quick_report))
    (Report.to_string r4)

let quick_adversarial_dominates () =
  let report = Lazy.force quick_report in
  let indep = Campaign.mean_disrupted report ~failure:"indep" in
  let adv = Campaign.mean_disrupted report ~failure:"adversarial" in
  check "independent failures disrupt someone" true (indep > 0.0);
  check "adversarial >= 2x independent" true (adv >= 2.0 *. indep)

let quick_report_shape () =
  let report = Lazy.force quick_report in
  check_int "54 variants" 54 (List.length report.Report.r_variants);
  check "summary renders" true (String.length (Campaign.render_summary report) > 100);
  check "html renders" true (String.length (Report.render_html report) > 1000);
  (* Round-trip through JSON. *)
  let r2 = Report.of_string (Report.to_string report) in
  check_string "round-trips" (Campaign.digest report) (Campaign.digest r2)

(* -- Golden figure cells ------------------------------------------------- *)

let figure_cells_match_drivers () =
  (* A campaign whose only cells are the four paper figures must produce
     variants byte-identical to the standalone figure drivers. *)
  let spec =
    {
      Campaign.quick with
      Campaign.topologies = [];
      figures = [ Campaign.Fig7; Campaign.Fig8; Campaign.Fig9; Campaign.Fig10 ];
      fig_scenarios = 6;
      fig_topologies = 2;
    }
  in
  let actual = Campaign.run ~jobs:2 spec in
  let c = Report.collector () in
  ignore (Figures.Fig7.run ~jobs:2 ~report:c ~seed:7 ~topologies:2 () : Figures.Fig7.result);
  ignore (Figures.Fig8.run ~jobs:2 ~report:c ~seed:8 ~scenarios:6 () : Figures.Fig8.row list);
  ignore
    (Figures.Fig9.run ~jobs:2 ~report:c ~seed:9 ~scenarios:6 ~degree_ten_row:false ()
      : Figures.Fig9.row list);
  ignore (Figures.Fig10.run ~jobs:2 ~report:c ~seed:10 ~scenarios:6 () : Figures.Fig10.row list);
  let expected =
    Report.make ~title:actual.Report.r_title ~meta:actual.Report.r_meta
      (List.map (fun (name, m) -> Report.of_metrics ~name m) (Report.collected c))
  in
  check_string "figure cells byte-identical to drivers"
    (Report.to_string expected) (Report.to_string actual)

(* -- Generator and shrinker over the new failure shapes ------------------- *)

let gen_covers_new_shapes () =
  let seen_ball = ref false and seen_chain = ref false in
  for seed = 0 to 199 do
    let case = Gen.case (Rng.create seed) in
    let case' = Gen.case (Rng.create seed) in
    if seed < 20 then check "gen deterministic" true (case = case');
    List.iter
      (fun ev ->
        match ev with
        | Case.Fail { links; nodes } ->
            if List.length nodes >= 3 then seen_ball := true;
            if List.length links >= 2 then seen_chain := true
        | _ -> ())
      case.Case.events
  done;
  check "regional balls generated" true !seen_ball;
  check "link chains generated" true !seen_chain

let shrink_splits_fail_groups () =
  (* A regional-style node group shrinks to the single element the
     predicate cares about; a chain of links likewise. *)
  let case =
    {
      Case.n = 8;
      edges = [ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0); (3, 4, 1.0); (4, 5, 1.0) ];
      source = 0;
      protocol = Case.Smrp;
      d_thresh = 0.3;
      events =
        [
          Case.Join 5;
          Case.Fail { links = []; nodes = [ 1; 2; 3; 4; 6; 7 ] };
          Case.Fail { links = [ 0; 1; 2; 3 ]; nodes = [] };
        ];
    }
  in
  let mentions_node v case =
    List.exists
      (function Case.Fail { nodes; _ } -> List.mem v nodes | _ -> false)
      case.Case.events
  in
  let mentions_link l case =
    List.exists
      (function Case.Fail { links; _ } -> List.mem l links | _ -> false)
      case.Case.events
  in
  let shrunk = Shrink.shrink ~fails:(mentions_node 3) case in
  let node_groups =
    List.filter_map
      (function Case.Fail { nodes; _ } when nodes <> [] -> Some nodes | _ -> None)
      shrunk.Case.events
  in
  check "node group split to the one culprit" true (List.mem [ 3 ] node_groups);
  let shrunk = Shrink.shrink ~fails:(mentions_link 2) case in
  let link_groups =
    List.filter_map
      (function Case.Fail { links; _ } when links <> [] -> Some links | _ -> None)
      shrunk.Case.events
  in
  check "link chain split to the one culprit" true
    (List.exists (fun l -> List.length l = 1) link_groups)

let () =
  Alcotest.run "campaign"
    [
      ( "churn",
        [
          Alcotest.test_case "deterministic" `Quick churn_deterministic;
          Alcotest.test_case "sorted and well-formed" `Quick churn_sorted_and_well_formed;
          Alcotest.test_case "flash burst sizes geometric" `Quick flash_burst_sizes_geometric;
          Alcotest.test_case "heavy-tail lifetimes pareto" `Quick heavy_tail_lifetimes_pareto;
          Alcotest.test_case "sampler moments" `Quick sampler_moments;
          Alcotest.test_case "diurnal join/leave balance" `Quick diurnal_balance;
        ] );
      ( "failure models",
        [
          Alcotest.test_case "deterministic and sane" `Quick failure_models_deterministic_and_sane;
          Alcotest.test_case "adversarial beats random" `Quick adversarial_beats_random;
        ] );
      ( "scenario",
        [ Alcotest.test_case "run_many dedups" `Quick run_many_dedup ] );
      ( "matrix",
        [
          Alcotest.test_case "cells dedup and seeding" `Quick cells_dedup_and_seed;
          Alcotest.test_case "spec_of_matrix" `Quick matrix_parser;
        ] );
      ( "quick campaign",
        [
          Alcotest.test_case "digest pinned" `Quick quick_digest_pinned;
          Alcotest.test_case "jobs byte-identity" `Quick quick_parallel_identity;
          Alcotest.test_case "adversarial dominates" `Quick quick_adversarial_dominates;
          Alcotest.test_case "report shape" `Quick quick_report_shape;
        ] );
      ( "figure cells",
        [ Alcotest.test_case "byte-identical to drivers" `Quick figure_cells_match_drivers ] );
      ( "check harness",
        [
          Alcotest.test_case "gen covers new shapes" `Quick gen_covers_new_shapes;
          Alcotest.test_case "shrink splits fail groups" `Quick shrink_splits_fail_groups;
        ] );
    ]
