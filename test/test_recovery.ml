(* Failure scenarios and detour computation (§3.1, §4.3.1). *)

module Graph = Smrp_graph.Graph
module Rng = Smrp_rng.Rng
module Waxman = Smrp_topology.Waxman
module Fixtures = Smrp_topology.Fixtures
module Tree = Smrp_core.Tree
module Spf = Smrp_core.Spf
module Smrp = Smrp_core.Smrp
module Failure = Smrp_core.Failure
module Recovery = Smrp_core.Recovery

(* Property tests run with a pinned PRNG state so failures are
   reproducible run over run. *)
let qcheck_case t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 424242 |]) t

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let check_ilist = Alcotest.(check (list int))

let edge g u v = (Option.get (Graph.edge_between g u v)).Graph.id

(* -- Failure scenarios ------------------------------------------------- *)

let filters () =
  let g = Fixtures.line 4 in
  let f_link = Failure.Link (edge g 1 2) in
  check "link failure keeps nodes" true (Failure.node_ok f_link 1);
  check "failed edge filtered" false (Failure.edge_ok g f_link (edge g 1 2));
  check "other edges survive" true (Failure.edge_ok g f_link (edge g 0 1));
  let f_node = Failure.Node 2 in
  check "failed node filtered" false (Failure.node_ok f_node 2);
  check "incident edges die" false (Failure.edge_ok g f_node (edge g 1 2));
  check "remote edges survive" true (Failure.edge_ok g f_node (edge g 0 1))

let worst_case_is_link_below_source () =
  let g = Fixtures.line 5 in
  let t = Spf.build g ~source:0 ~members:[ 4 ] in
  (match Failure.worst_case_for_member t 4 with
  | Some (Failure.Link eid) -> check_int "first link from source" (edge g 0 1) eid
  | _ -> Alcotest.fail "expected a link failure");
  check "none for the source" true (Failure.worst_case_for_member t 0 = None)

let tree_connected_under_failure () =
  let g = Fixtures.line 5 in
  let t = Spf.build g ~source:0 ~members:[ 4; 2 ] in
  let connected = Failure.tree_connected t (Failure.Link (edge g 2 3)) in
  check "source side survives" true (connected.(0) && connected.(1) && connected.(2));
  check "far side cut" false (connected.(3) || connected.(4))

let node_failure_cuts_subtree () =
  let g = Fixtures.line 5 in
  let t = Spf.build g ~source:0 ~members:[ 4; 2 ] in
  let f = Failure.Node 3 in
  check_ilist "only member 4 affected" [ 4 ] (Failure.affected_members t f);
  let f2 = Failure.Node 2 in
  (* Member 2's router died: it is not recoverable, so not "affected". *)
  check_ilist "dead member excluded, downstream affected" [ 4 ] (Failure.affected_members t f2)

(* -- Detours ----------------------------------------------------------- *)

let local_detour_on_ring () =
  let g = Fixtures.ring 6 in
  let t = Spf.build g ~source:0 ~members:[ 2 ] in
  (* Tree: 0-1-2.  Worst case kills 0-1; local detour from 2: nearest
     surviving on-tree node is 0, two hops away via 3? No: ring 0-1-2-3-4-5;
     from 2 the surviving tree is just {0}; shortest surviving path
     2-3-4-5-0 has length... ring edges all delay 1, 2→3→4→5→0 = 4...
     but 2-1-0 is blocked only at edge 0-1, so 2→1→0 is len 2 with 1 dead?
     No: only the link 0-1 failed, node 1 is alive, edge 1-2 alive, so the
     path 2..via 1 is 2-1 then stuck (0-1 failed). Hence detour = 2-3-4-5-0. *)
  let f = Option.get (Failure.worst_case_for_member t 2) in
  let d = Option.get (Recovery.local_detour t f ~member:2) in
  check_int "merge at source" 0 d.Recovery.merge;
  check_float "RD around the ring" 4.0 d.Recovery.recovery_distance;
  check_ilist "path" [ 2; 3; 4; 5; 0 ] d.Recovery.path_nodes

let local_prefers_nearest_survivor () =
  let f = Fixtures.fig1 () in
  let g = f.Fixtures.graph in
  let t = Spf.build g ~source:f.Fixtures.s ~members:[ f.Fixtures.c; f.Fixtures.d ] in
  let fail = Failure.Link (edge g f.Fixtures.a f.Fixtures.d) in
  let d = Option.get (Recovery.local_detour t fail ~member:f.Fixtures.d) in
  check_int "C is closest" f.Fixtures.c d.Recovery.merge

let trivial_detour_for_unaffected () =
  let g = Fixtures.diamond () in
  let t = Spf.build g ~source:0 ~members:[ 1; 2 ] in
  let fail = Failure.Link (edge g 0 1) in
  let d = Option.get (Recovery.local_detour t fail ~member:2) in
  check_float "zero distance" 0.0 d.Recovery.recovery_distance;
  check_int "merges at itself" 2 d.Recovery.merge

let isolated_member_gets_none () =
  let g = Fixtures.line 3 in
  let t = Spf.build g ~source:0 ~members:[ 2 ] in
  let fail = Failure.Link (edge g 1 2) in
  check "no detour" true (Recovery.local_detour t fail ~member:2 = None);
  check "no global either" true (Recovery.global_detour t fail ~member:2 = None)

let dead_member_gets_none () =
  let g = Fixtures.diamond () in
  let t = Spf.build g ~source:0 ~members:[ 3 ] in
  check "dead router" true (Recovery.local_detour t (Failure.Node 3) ~member:3 = None)

let global_counts_only_new_links () =
  let f = Fixtures.fig1 () in
  let g = f.Fixtures.graph in
  let t = Spf.build g ~source:f.Fixtures.s ~members:[ f.Fixtures.c; f.Fixtures.d ] in
  let fail = Failure.Link (edge g f.Fixtures.a f.Fixtures.d) in
  let d = Option.get (Recovery.global_detour t fail ~member:f.Fixtures.d) in
  (* The new unicast path is D-B-S; both links are new, RD = 3. *)
  check_float "RD counts the full new segment" 3.0 d.Recovery.recovery_distance

let global_merges_on_surviving_structure () =
  let g = Fixtures.grid 3 in
  (* Tree 0-1-2 and 0-3-6-7-8, members 2 and 8; fail link 0-3.
     8's new shortest path to 0 is e.g. 8-5-2-1-0; 2 is a surviving on-tree
     node, so the re-join merges there with RD 2. *)
  let t = Tree.create g ~source:0 in
  Tree.graft t ~nodes:[ 0; 1; 2 ] ~edges:[ edge g 0 1; edge g 1 2 ];
  Tree.add_member t 2;
  Tree.graft t ~nodes:[ 0; 3; 6; 7; 8 ] ~edges:[ edge g 0 3; edge g 3 6; edge g 6 7; edge g 7 8 ];
  Tree.add_member t 8;
  let fail = Failure.Link (edge g 0 3) in
  let d = Option.get (Recovery.global_detour t fail ~member:8) in
  check_int "merges at 2" 2 d.Recovery.merge;
  check_float "RD 2" 2.0 d.Recovery.recovery_distance;
  let l = Option.get (Recovery.local_detour t fail ~member:8) in
  check_float "local finds the same here" 2.0 l.Recovery.recovery_distance

(* -- Session-level repair (isolated members, correlated failures) ------ *)

module Session = Smrp_core.Session

let session_isolated_member_is_lost () =
  (* 0-1-2 line with a pendant 3 off node 1.  Killing link 1-2 leaves
     member 2 with no surviving path to any node at all: the session must
     drop it, log [Lost], and keep the unaffected member 3 intact. *)
  let g = Graph.create 4 in
  let e01 = Graph.add_edge g 0 1 1.0 in
  let e12 = Graph.add_edge g 1 2 1.0 in
  let _e13 = Graph.add_edge g 1 3 1.0 in
  ignore e01;
  let s = Session.create g ~source:0 ~protocol:(Session.Smrp { d_thresh = 0.3 }) in
  Session.join s 2;
  Session.join s 3;
  let repairs = Session.fail s (Failure.Link e12) in
  check "nothing repairable" true (repairs = []);
  check "lost event logged" true (List.mem (Session.Lost 2) (Session.events s));
  let t = Session.tree s in
  check "member 2 dropped" false (Tree.is_member t 2);
  check "member 3 kept" true (Tree.is_member t 3);
  check_int "one member left" 1 (Tree.member_count t);
  (match Tree.validate t with Ok () -> () | Error e -> Alcotest.fail e)

let session_correlated_two_link_failure () =
  (* Correlated (SRLG-style) double failure on the 3x3 grid: both failed
     links sit on member 8's tree path, so a single-failure repair would
     route straight into the second fault.  The repair must avoid both at
     once: 8 detours via 5 to the surviving branch at 2. *)
  let g = Fixtures.grid 3 in
  let t = Tree.create g ~source:0 in
  Tree.graft t ~nodes:[ 0; 1; 2 ] ~edges:[ edge g 0 1; edge g 1 2 ];
  Tree.add_member t 2;
  Tree.graft t ~nodes:[ 0; 3; 6; 7; 8 ] ~edges:[ edge g 0 3; edge g 3 6; edge g 6 7; edge g 7 8 ];
  Tree.add_member t 8;
  let f = Failure.Multi [ Failure.Link (edge g 0 3); Failure.Link (edge g 7 8) ] in
  let d = Option.get (Recovery.local_detour t f ~member:8) in
  check_ilist "detour threads between both faults" [ 8; 5; 2 ] d.Recovery.path_nodes;
  check_float "RD counts both new links" 2.0 d.Recovery.recovery_distance;
  (* The same episode through the Session façade: one repair, no losses,
     and the rebuilt tree avoids both failed links. *)
  let s = Session.create g ~source:0 ~protocol:(Session.Smrp { d_thresh = 0.3 }) in
  Session.join s 2;
  Session.join s 8;
  let repairs = Session.fail s f in
  check_int "one member repaired" 1 (List.length repairs);
  check "no members lost" true
    (List.for_all (function Session.Lost _ -> false | _ -> true) (Session.events s));
  let t' = Session.tree s in
  check "both members still served" true (Tree.is_member t' 2 && Tree.is_member t' 8);
  List.iter
    (fun eid ->
      List.iter
        (fun v ->
          match Tree.parent_edge t' v with
          | Some e -> check "failed link not on tree" false (e = eid)
          | None -> ())
        (Tree.on_tree_nodes t'))
    [ edge g 0 3; edge g 7 8 ];
  (match Tree.validate t' with Ok () -> () | Error e -> Alcotest.fail e)

(* -- surviving_tree ---------------------------------------------------- *)

let surviving_tree_contents () =
  let g = Fixtures.line 5 in
  let t = Spf.build g ~source:0 ~members:[ 2; 4 ] in
  let fresh = Recovery.surviving_tree t (Failure.Link (edge g 2 3)) in
  check "member 2 kept" true (Tree.is_member fresh 2);
  check "member 4 dropped" false (Tree.is_member fresh 4);
  check "nodes 3,4 off tree" false (Tree.is_on_tree fresh 3 || Tree.is_on_tree fresh 4);
  check_int "one member" 1 (Tree.member_count fresh);
  (match Tree.validate fresh with Ok () -> () | Error e -> Alcotest.fail e)

let surviving_tree_total_failure () =
  let g = Fixtures.line 3 in
  let t = Spf.build g ~source:0 ~members:[ 2 ] in
  let fresh = Recovery.surviving_tree t (Failure.Link (edge g 0 1)) in
  check_ilist "only the source remains" [ 0 ] (Tree.on_tree_nodes fresh)

(* -- Properties -------------------------------------------------------- *)

let random_scene seed =
  let rng = Rng.create seed in
  let n = 20 + Rng.int rng 60 in
  let topo = Waxman.generate rng ~n ~alpha:0.2 ~beta:0.2 in
  let k = 2 + Rng.int rng (min 15 (n - 2)) in
  let sample = Smrp_rng.Rng.sample_without_replacement rng (k + 1) n in
  (topo.Waxman.graph, List.hd sample, List.tl sample)

let qcheck_local_never_longer_than_global =
  QCheck.Test.make ~name:"local detour is never longer than global detour" ~count:200
    QCheck.small_int (fun seed ->
      let g, source, members = random_scene seed in
      let t = Smrp.build ~d_thresh:0.3 g ~source ~members in
      List.for_all
        (fun m ->
          match Failure.worst_case_for_member t m with
          | None -> true
          | Some f -> (
              match (Recovery.local_detour t f ~member:m, Recovery.global_detour t f ~member:m) with
              | Some l, Some gl ->
                  l.Recovery.recovery_distance <= gl.Recovery.recovery_distance +. 1e-9
              | None, Some _ -> false (* global path implies a local one *)
              | _, None -> true))
        members)

let qcheck_detour_paths_avoid_failure =
  QCheck.Test.make ~name:"detour paths avoid the failed component" ~count:150 QCheck.small_int
    (fun seed ->
      let g, source, members = random_scene seed in
      let t = Spf.build g ~source ~members in
      List.for_all
        (fun m ->
          match Failure.worst_case_for_member t m with
          | None -> true
          | Some f -> (
              match Recovery.local_detour t f ~member:m with
              | None -> true
              | Some d ->
                  List.for_all (Failure.node_ok f) d.Recovery.path_nodes
                  && List.for_all (Failure.edge_ok g f) d.Recovery.path_edges))
        members)

let qcheck_detour_merge_is_surviving =
  QCheck.Test.make ~name:"detours merge at a node that still receives data" ~count:150
    QCheck.small_int (fun seed ->
      let g, source, members = random_scene seed in
      let t = Spf.build g ~source ~members in
      List.for_all
        (fun m ->
          match Failure.worst_case_for_member t m with
          | None -> true
          | Some f -> (
              let connected = Failure.tree_connected t f in
              match Recovery.local_detour t f ~member:m with
              | None -> true
              | Some d -> connected.(d.Recovery.merge)))
        members)

let qcheck_surviving_tree_valid =
  QCheck.Test.make ~name:"surviving trees validate" ~count:150 QCheck.small_int (fun seed ->
      let g, source, members = random_scene seed in
      let t = Smrp.build ~d_thresh:0.3 g ~source ~members in
      List.for_all
        (fun m ->
          match Failure.worst_case_for_member t m with
          | None -> true
          | Some f -> Tree.validate (Recovery.surviving_tree t f) = Ok ())
        members)

let () =
  Alcotest.run "recovery"
    [
      ( "failure",
        [
          Alcotest.test_case "filters" `Quick filters;
          Alcotest.test_case "worst case link" `Quick worst_case_is_link_below_source;
          Alcotest.test_case "tree connectivity" `Quick tree_connected_under_failure;
          Alcotest.test_case "node failure" `Quick node_failure_cuts_subtree;
        ] );
      ( "detours",
        [
          Alcotest.test_case "local around a ring" `Quick local_detour_on_ring;
          Alcotest.test_case "local prefers nearest" `Quick local_prefers_nearest_survivor;
          Alcotest.test_case "trivial for unaffected" `Quick trivial_detour_for_unaffected;
          Alcotest.test_case "isolated member" `Quick isolated_member_gets_none;
          Alcotest.test_case "dead member" `Quick dead_member_gets_none;
          Alcotest.test_case "global counts new links" `Quick global_counts_only_new_links;
          Alcotest.test_case "global merges on survivors" `Quick global_merges_on_surviving_structure;
        ] );
      ( "session",
        [
          Alcotest.test_case "isolated member is lost" `Quick session_isolated_member_is_lost;
          Alcotest.test_case "correlated two-link failure" `Quick
            session_correlated_two_link_failure;
        ] );
      ( "surviving_tree",
        [
          Alcotest.test_case "contents" `Quick surviving_tree_contents;
          Alcotest.test_case "total failure" `Quick surviving_tree_total_failure;
        ] );
      ( "properties",
        [
          qcheck_case qcheck_local_never_longer_than_global;
          qcheck_case qcheck_detour_paths_avoid_failure;
          qcheck_case qcheck_detour_merge_is_surviving;
          qcheck_case qcheck_surviving_tree_valid;
        ] );
    ]
