(* Flight recorder: ring semantics, packing, dumps, and the causal
   stitcher on a pinned two-failure record stream. *)

module Flight = Smrp_obs.Flight
module Causal = Smrp_obs.Causal

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sec s = int_of_float (s *. Flight.ticks_per_second)

(* A hand-built decoded record, for driving the stitcher directly. *)
let rec_ ?(domain = 0) ?(seq = 0) ~tick ~code ~a ~b () =
  { Flight.d_tick = tick; d_code = code; d_a = a; d_b = b; d_domain = domain; d_seq = seq }

(* -- Ring ---------------------------------------------------------------- *)

let test_wraparound () =
  let t = Flight.create ~capacity:8 () in
  let r = Flight.recorder t in
  for k = 0 to 19 do
    Flight.record r ~tick:(100 + k) ~code:Flight.ev_fire ~a:k ~b:(-k)
  done;
  check_int "dropped counts overwrites" 12 (Flight.dropped t);
  let snap = Flight.snapshot t in
  check_int "ring keeps last capacity records" 8 (List.length snap);
  List.iteri
    (fun i (r : Flight.decoded) ->
      check_int "surviving seq" (12 + i) r.Flight.d_seq;
      check_int "surviving tick" (112 + i) r.Flight.d_tick;
      check_int "operand a" (12 + i) r.Flight.d_a;
      check_int "operand b" (-(12 + i)) r.Flight.d_b)
    snap;
  Flight.reset t;
  check_int "reset clears dropped" 0 (Flight.dropped t);
  check_int "reset clears records" 0 (List.length (Flight.snapshot t));
  (* The pre-reset recorder handle stays valid. *)
  Flight.record r ~tick:7 ~code:Flight.ev_fire ~a:0 ~b:0;
  check_int "handle survives reset" 1 (List.length (Flight.snapshot t))

let test_domain_merge () =
  let t = Flight.create ~capacity:64 () in
  let r = Flight.recorder t in
  List.iter (fun k -> Flight.record r ~tick:k ~code:Flight.ev_fire ~a:0 ~b:0) [ 1; 3; 5 ];
  let d =
    Domain.spawn (fun () ->
        let r' = Flight.recorder t in
        List.iter (fun k -> Flight.record r' ~tick:k ~code:Flight.ev_schedule ~a:0 ~b:0) [ 2; 4 ])
  in
  Domain.join d;
  let snap = Flight.snapshot t in
  check_int "merged record count" 5 (List.length snap);
  let ticks = List.map (fun (r : Flight.decoded) -> r.Flight.d_tick) snap in
  check "merged stream is tick-ordered" true (ticks = [ 1; 2; 3; 4; 5 ]);
  let domains =
    List.sort_uniq compare (List.map (fun (r : Flight.decoded) -> r.Flight.d_domain) snap)
  in
  check_int "two distinct writer domains" 2 (List.length domains)

let test_roundtrip () =
  let t = Flight.create ~capacity:8 () in
  let r = Flight.recorder t in
  (* Max-width operands survive raw; the tick is truncated to 54 bits. *)
  Flight.record r ~tick:((1 lsl 54) + 5) ~code:Flight.net_send ~a:max_int ~b:(-1);
  Flight.record r ~tick:0 ~code:255 ~a:min_int ~b:0;
  (* The snapshot is tick-ordered, so the truncated-tick record (5) sorts
     after the tick-0 one. *)
  (match Flight.snapshot t with
  | [ r2; r1 ] ->
      check_int "tick truncated to 54 bits" 5 r1.Flight.d_tick;
      check_int "code" Flight.net_send r1.Flight.d_code;
      check "a = max_int survives" true (r1.Flight.d_a = max_int);
      check_int "b = -1 survives" (-1) r1.Flight.d_b;
      check_int "code truncated to 8 bits" 255 r2.Flight.d_code;
      check "a = min_int survives" true (r2.Flight.d_a = min_int)
  | l -> Alcotest.failf "expected 2 records, got %d" (List.length l));
  check "null recorder records nothing" true
    (let before = List.length (Flight.snapshot t) in
     Flight.record Flight.null ~tick:1 ~code:1 ~a:1 ~b:1;
     List.length (Flight.snapshot t) = before)

let test_code_names () =
  List.iter
    (fun c ->
      match Flight.code_of_name (Flight.code_name c) with
      | Some c' -> check_int "code name round-trips" c c'
      | None -> Alcotest.failf "code %d name does not resolve" c)
    [
      Flight.ev_fire; Flight.ev_schedule; Flight.ev_cancel; Flight.net_send; Flight.net_deliver;
      Flight.net_drop_send; Flight.net_drop_flight; Flight.net_drop_loss; Flight.proto_failure;
      Flight.proto_detected; Flight.proto_signal; Flight.proto_installed; Flight.proto_first_data;
      Flight.proto_reshape; Flight.exec_event; Flight.exec_violation;
    ];
  check "numeric names accepted" true (Flight.code_of_name "42" = Some 42);
  check "unknown names rejected" true (Flight.code_of_name "no.such.code" = None)

(* -- Dumps --------------------------------------------------------------- *)

let test_dump_roundtrip () =
  let t = Flight.create ~capacity:8 () in
  let r = Flight.recorder t in
  Flight.record r ~tick:(sec 1.0) ~code:Flight.proto_failure ~a:3 ~b:0;
  Flight.record r ~tick:(sec 1.5) ~code:Flight.proto_detected ~a:7 ~b:(-2);
  let records = Flight.snapshot t in
  let path = Filename.temp_file "smrp-flight" ".flight" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Flight.write_dump path ~dropped:5 records;
      let records', dropped = Flight.read_dump path in
      check_int "dump preserves dropped" 5 dropped;
      check "dump round-trips records" true (records' = records));
  let bad = Filename.temp_file "smrp-flight" ".flight" in
  Fun.protect
    ~finally:(fun () -> Sys.remove bad)
    (fun () ->
      let oc = open_out bad in
      output_string oc "not a dump\n";
      close_out oc;
      check "malformed dump raises Bad_dump" true
        (match Flight.read_dump bad with
        | _ -> false
        | exception Flight.Bad_dump _ -> true))

(* -- Causal stitching ---------------------------------------------------- *)

(* Two failure roots over one member: the first episode runs to first data
   and closes; the second re-opens the member under the new root. *)
let test_stitch_two_failures () =
  let records =
    List.mapi
      (fun i (tick, code, a) -> rec_ ~seq:i ~tick ~code ~a ~b:0 ())
      [
        (sec 1.0, Flight.proto_failure, 3);
        (sec 1.5, Flight.proto_detected, 7);
        (sec 1.6, Flight.proto_signal, 7);
        (sec 1.8, Flight.proto_installed, 7);
        (sec 2.0, Flight.proto_first_data, 7);
        (sec 3.0, Flight.proto_failure, 4);
        (sec 3.2, Flight.proto_detected, 7);
        (sec 3.3, Flight.proto_signal, 7);
        (sec 3.5, Flight.proto_first_data, 7);
      ]
  in
  let a = Causal.of_records ~dropped:2 records in
  check_int "dropped propagates" 2 a.Causal.a_dropped;
  match a.Causal.a_episodes with
  | [ e1; e2 ] ->
      let near x = function Some d -> Float.abs (d -. x) < 1e-6 | None -> false in
      check "episode 1 rooted at first failure" true (Float.abs (e1.Causal.failure_at -. 1.0) < 1e-6);
      let phases = Causal.phase_durations e1 in
      check "detect 0.5" true (near 0.5 (List.assoc Causal.Detect phases));
      check "notify 0.1" true (near 0.1 (List.assoc Causal.Notify phases));
      check "repair 0.2" true (near 0.2 (List.assoc Causal.Repair phases));
      check "stabilize 0.2" true (near 0.2 (List.assoc Causal.Stabilize phases));
      check "total 1.0" true (near 1.0 (Causal.total e1));
      check_int "episode 1 attempts" 1 e1.Causal.attempts;
      check "episode 2 rooted at second failure" true
        (Float.abs (e2.Causal.failure_at -. 3.0) < 1e-6);
      check "episode 2 skipped install" true (e2.Causal.installed_at = None);
      check "episode 2 closed by first data" true (near 3.5 e2.Causal.first_data_at)
  | l -> Alcotest.failf "expected 2 episodes, got %d" (List.length l)

let test_stitch_violation_phase () =
  let records =
    [
      rec_ ~seq:0 ~tick:0
        ~code:Flight.exec_event
        ~a:(Causal.pack_exec_event ~kind:Causal.kind_join ~operand:4)
        ~b:0 ();
      rec_ ~seq:1 ~tick:0 ~code:Flight.exec_violation ~a:(Causal.oracle_id "structure") ~b:0 ();
    ]
  in
  let a = Causal.of_records records in
  (match a.Causal.a_violations with
  | [ v ] ->
      check "oracle name resolves" true (String.equal v.Causal.v_oracle "structure");
      check "join event attributes to repair phase" true (v.Causal.v_phase = Causal.Repair);
      check_int "violating member" 4 v.Causal.v_member
  | l -> Alcotest.failf "expected 1 violation, got %d" (List.length l));
  let rendered = Causal.render a in
  check "render names the violated phase" true
    (let needle = "violated during repair phase" in
     let n = String.length needle and m = String.length rendered in
     let rec find i = i + n <= m && (String.equal (String.sub rendered i n) needle || find (i + 1)) in
     find 0)

let () =
  Alcotest.run "flight"
    [
      ( "ring",
        [
          Alcotest.test_case "wrap-around keeps newest and counts drops" `Quick test_wraparound;
          Alcotest.test_case "per-domain rings merge tick-ordered" `Quick test_domain_merge;
          Alcotest.test_case "encode/decode round-trip at operand extremes" `Quick test_roundtrip;
          Alcotest.test_case "code names round-trip" `Quick test_code_names;
        ] );
      ("dump", [ Alcotest.test_case "write/read round-trip and Bad_dump" `Quick test_dump_roundtrip ]);
      ( "causal",
        [
          Alcotest.test_case "two-failure stream stitches two episodes" `Quick
            test_stitch_two_failures;
          Alcotest.test_case "violations attributed to recovery phase" `Quick
            test_stitch_violation_phase;
        ] );
    ]
