module Heap = Smrp_graph.Heap
module Int_heap = Smrp_graph.Int_heap

(* Property tests run with a pinned PRNG state so failures are
   reproducible run over run. *)
let qcheck_case t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 424242 |]) t

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_ilist = Alcotest.(check (list int))

let pops_in_order () =
  let h = Heap.create () in
  List.iter (fun p -> Heap.add h p p) [ 5.0; 1.0; 4.0; 2.0; 3.0 ];
  let order = List.init 5 (fun _ -> snd (Option.get (Heap.pop_min h))) in
  Alcotest.(check (list (float 0.0))) "sorted" [ 1.0; 2.0; 3.0; 4.0; 5.0 ] order

let fifo_on_ties () =
  let h = Heap.create () in
  List.iteri (fun i name -> ignore i; Heap.add h 1.0 name) [ "a"; "b"; "c"; "d" ];
  let order = List.init 4 (fun _ -> snd (Option.get (Heap.pop_min h))) in
  Alcotest.(check (list string)) "insertion order on equal priority" [ "a"; "b"; "c"; "d" ] order

let mixed_ties () =
  let h = Heap.create () in
  Heap.add h 2.0 "x1";
  Heap.add h 1.0 "y1";
  Heap.add h 2.0 "x2";
  Heap.add h 1.0 "y2";
  let order = List.init 4 (fun _ -> snd (Option.get (Heap.pop_min h))) in
  Alcotest.(check (list string)) "priority then fifo" [ "y1"; "y2"; "x1"; "x2" ] order

let peek_does_not_remove () =
  let h = Heap.create () in
  Heap.add h 1.0 "only";
  Alcotest.(check (option (pair (float 0.0) string))) "peek" (Some (1.0, "only")) (Heap.peek_min h);
  check_int "still there" 1 (Heap.length h)

let empty_pops () =
  let h : int Heap.t = Heap.create () in
  check "empty" true (Heap.is_empty h);
  check "pop none" true (Heap.pop_min h = None);
  check "peek none" true (Heap.peek_min h = None)

let interleaved () =
  let h = Heap.create () in
  Heap.add h 3.0 3;
  Heap.add h 1.0 1;
  check "min is 1" true (snd (Option.get (Heap.pop_min h)) = 1);
  Heap.add h 2.0 2;
  Heap.add h 0.5 0;
  check "min is 0" true (snd (Option.get (Heap.pop_min h)) = 0);
  check "then 2" true (snd (Option.get (Heap.pop_min h)) = 2);
  check "then 3" true (snd (Option.get (Heap.pop_min h)) = 3)

let clear_resets () =
  let h = Heap.create () in
  Heap.add h 1.0 1;
  Heap.clear h;
  check "empty after clear" true (Heap.is_empty h)

let grows_large () =
  let h = Heap.create () in
  for i = 999 downto 0 do
    Heap.add h (float_of_int i) i
  done;
  check_int "length" 1000 (Heap.length h);
  for i = 0 to 999 do
    check_int "in order" i (snd (Option.get (Heap.pop_min h)))
  done

let qcheck_sorted_pops =
  QCheck.Test.make ~name:"pop sequence is non-decreasing" ~count:300
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun priorities ->
      let h = Heap.create () in
      List.iter (fun p -> Heap.add h p p) priorities;
      let rec drain last =
        match Heap.pop_min h with
        | None -> true
        | Some (p, _) -> p >= last && drain p
      in
      drain neg_infinity)

let qcheck_stable_ties =
  QCheck.Test.make ~name:"ties pop in insertion order" ~count:300
    QCheck.(list (int_range 0 3))
    (fun keys ->
      let h = Heap.create () in
      List.iteri (fun i k -> Heap.add h (float_of_int k) (k, i)) keys;
      let rec drain last =
        match Heap.pop_min h with
        | None -> true
        | Some (_, (k, i)) -> (
            match last with
            | Some (lk, li) when lk = k -> li < i && drain (Some (k, i))
            | _ -> drain (Some (k, i)))
      in
      drain None)

let capacity_pre_sizing () =
  (* A tiny initial capacity still grows transparently... *)
  let h = Heap.create ~capacity:1 () in
  List.iter (fun p -> Heap.add h p p) [ 5.0; 1.0; 4.0; 2.0; 3.0 ];
  let order = List.init 5 (fun _ -> snd (Option.get (Heap.pop_min h))) in
  Alcotest.(check (list (float 0.0))) "grown from capacity 1" [ 1.0; 2.0; 3.0; 4.0; 5.0 ] order;
  (* ...and a generous one is just as correct. *)
  let h = Heap.create ~capacity:64 () in
  List.iter (fun p -> Heap.add h p p) [ 2.0; 1.0 ];
  Alcotest.(check (option (pair (float 0.0) (float 0.0)))) "pre-sized"
    (Some (1.0, 1.0)) (Heap.pop_min h)

let duplicate_keys_all_values_survive () =
  (* Regression for the sift-up bug where an element equal to its parent
     could shadow it: under heavy key duplication every inserted value must
     still come back out, exactly once, keys non-decreasing. *)
  let h = Heap.create ~capacity:1 () in
  let n = 200 in
  for i = 0 to n - 1 do
    Heap.add h (float_of_int (i mod 3)) i
  done;
  let seen = Array.make n false in
  let rec drain last count =
    match Heap.pop_min h with
    | None -> count
    | Some (p, v) ->
        check "non-decreasing" true (p >= last);
        check "value popped once" false seen.(v);
        seen.(v) <- true;
        drain p (count + 1)
  in
  check_int "every value recovered" n (drain neg_infinity 0);
  check "drained" true (Heap.is_empty h)

let pop_after_drain_and_reuse () =
  (* Popping past empty is a stable no-op, and the drained heap is fully
     reusable — no stale storage from the previous episode. *)
  let h = Heap.create () in
  List.iter (fun p -> Heap.add h p p) [ 2.0; 1.0 ];
  ignore (Heap.pop_min h);
  ignore (Heap.pop_min h);
  check "pop past empty" true (Heap.pop_min h = None);
  check "still none" true (Heap.pop_min h = None);
  Heap.add h 3.0 3.0;
  Alcotest.(check (option (pair (float 0.0) (float 0.0))))
    "reusable after drain" (Some (3.0, 3.0)) (Heap.pop_min h)

(* -- Int_heap: the unboxed heap behind the Dijkstra workspace ---------- *)

let int_heap_pops_in_order () =
  let h = Int_heap.create ~capacity:1 () in
  List.iteri (fun i p -> Int_heap.add h p (10 + i)) [ 5.0; 1.0; 4.0; 2.0; 3.0 ];
  let order = List.init 5 (fun _ -> snd (Option.get (Int_heap.pop_min h))) in
  check_ilist "sorted by priority" [ 11; 13; 14; 12; 10 ] order

let int_heap_fifo_on_ties () =
  let h = Int_heap.create () in
  List.iter (fun v -> Int_heap.add h 1.0 v) [ 7; 8; 9 ];
  Int_heap.add h 0.5 6;
  let order = List.init 4 (fun _ -> snd (Option.get (Int_heap.pop_min h))) in
  check_ilist "priority then insertion order" [ 6; 7; 8; 9 ] order

let int_heap_top_and_drop () =
  let h = Int_heap.create () in
  check "empty" true (Int_heap.is_empty h);
  Int_heap.add h 2.0 20;
  Int_heap.add h 1.0 10;
  check_int "length" 2 (Int_heap.length h);
  Alcotest.(check (float 0.0)) "top_prio" 1.0 (Int_heap.top_prio h);
  check_int "top" 10 (Int_heap.top h);
  Int_heap.drop h;
  check_int "top after drop" 20 (Int_heap.top h);
  Int_heap.drop h;
  check "drained" true (Int_heap.is_empty h);
  Alcotest.check_raises "top on empty" (Invalid_argument "Int_heap.top: empty heap") (fun () ->
      ignore (Int_heap.top h))

let int_heap_clear_reuses () =
  let h = Int_heap.create ~capacity:2 () in
  List.iter (fun v -> Int_heap.add h (float_of_int v) v) [ 3; 1; 2 ];
  Int_heap.clear h;
  check "cleared" true (Int_heap.is_empty h);
  (* After clear the sequence stamps restart, so ties are FIFO again. *)
  List.iter (fun v -> Int_heap.add h 1.0 v) [ 4; 5 ];
  let order = List.init 2 (fun _ -> snd (Option.get (Int_heap.pop_min h))) in
  check_ilist "fifo after clear" [ 4; 5 ] order

let int_heap_duplicate_keys_and_empty_pop () =
  let h = Int_heap.create ~capacity:1 () in
  check "pop on fresh heap" true (Int_heap.pop_min h = None);
  let n = 200 in
  for i = 0 to n - 1 do
    Int_heap.add h (float_of_int (i mod 3)) i
  done;
  let seen = Array.make n false in
  let rec drain last count =
    match Int_heap.pop_min h with
    | None -> count
    | Some (p, v) ->
        check "non-decreasing" true (p >= last);
        check "value popped once" false seen.(v);
        seen.(v) <- true;
        drain p (count + 1)
  in
  check_int "every value recovered" n (drain neg_infinity 0);
  check "pop past empty" true (Int_heap.pop_min h = None);
  Int_heap.add h 1.0 7;
  check_int "reusable after drain" 7 (snd (Option.get (Int_heap.pop_min h)))

(* Differential check against the generic heap: identical pop sequences on
   random workloads, including equal priorities — Dijkstra's determinism
   rests on this agreement. *)
let qcheck_int_heap_matches_generic =
  QCheck.Test.make ~name:"Int_heap pops in the same order as Heap" ~count:200
    QCheck.(list (pair (int_range 0 9) (int_range 0 999)))
    (fun entries ->
      let ih = Int_heap.create ~capacity:1 () in
      let gh = Heap.create () in
      List.iter
        (fun (p, v) ->
          let p = float_of_int p in
          Int_heap.add ih p v;
          Heap.add gh p v)
        entries;
      let rec drain () =
        match (Int_heap.pop_min ih, Heap.pop_min gh) with
        | None, None -> true
        | Some a, Some b -> a = b && drain ()
        | _ -> false
      in
      drain ())

let () =
  Alcotest.run "heap"
    [
      ( "ordering",
        [
          Alcotest.test_case "pops in priority order" `Quick pops_in_order;
          Alcotest.test_case "fifo on ties" `Quick fifo_on_ties;
          Alcotest.test_case "mixed ties" `Quick mixed_ties;
          Alcotest.test_case "interleaved add/pop" `Quick interleaved;
          Alcotest.test_case "grows large" `Quick grows_large;
        ] );
      ( "basics",
        [
          Alcotest.test_case "peek does not remove" `Quick peek_does_not_remove;
          Alcotest.test_case "empty pops" `Quick empty_pops;
          Alcotest.test_case "clear resets" `Quick clear_resets;
          Alcotest.test_case "capacity pre-sizing" `Quick capacity_pre_sizing;
          Alcotest.test_case "duplicate keys keep every value" `Quick
            duplicate_keys_all_values_survive;
          Alcotest.test_case "pop after drain and reuse" `Quick pop_after_drain_and_reuse;
        ] );
      ( "int_heap",
        [
          Alcotest.test_case "pops in priority order" `Quick int_heap_pops_in_order;
          Alcotest.test_case "fifo on ties" `Quick int_heap_fifo_on_ties;
          Alcotest.test_case "top and drop" `Quick int_heap_top_and_drop;
          Alcotest.test_case "clear reuses storage" `Quick int_heap_clear_reuses;
          Alcotest.test_case "duplicate keys and empty pops" `Quick
            int_heap_duplicate_keys_and_empty_pop;
        ] );
      ( "properties",
        [
          qcheck_case qcheck_sorted_pops;
          qcheck_case qcheck_stable_ties;
          qcheck_case qcheck_int_heap_matches_generic;
        ] );
    ]
