(* Bench regression gate: the hand-rolled JSON layer and the baseline
   comparison logic (bench/check.exe drives these from the CLI). *)

module J = Bench_support.Bench_json
module Check = Bench_support.Check_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* -- JSON --------------------------------------------------------------- *)

let json_roundtrip () =
  let v =
    J.Obj
      [
        ("schema_version", J.Num 2.0);
        ("name", J.Str "bench \"quoted\"\nline");
        ("flag", J.Bool true);
        ("nothing", J.Null);
        ("list", J.List [ J.Num 1.5; J.Num (-3.0); J.Str "x"; J.Obj [] ]);
        ("nested", J.Obj [ ("pi", J.Num 3.141592653589793); ("neg", J.Num (-0.001)) ]);
      ]
  in
  check "pretty roundtrips" true (J.parse (J.to_string v) = v);
  check "minified roundtrips" true (J.parse (J.to_string ~minify:true v) = v);
  check "minified is one line" true (not (String.contains (J.to_string ~minify:true v) '\n'));
  check "whitespace tolerated" true (J.parse " { \"a\" : [ 1 , 2 ] } " = J.Obj [ ("a", J.List [ J.Num 1.0; J.Num 2.0 ]) ]);
  check "unicode escape" true (J.parse "\"\\u0041\\u00e9\"" = J.Str "A\xc3\xa9")

let json_rejects_malformed () =
  let rejects s =
    match J.parse s with
    | exception J.Parse_error _ -> true
    | _ -> false
  in
  List.iter
    (fun s -> check (Printf.sprintf "rejects %S" s) true (rejects s))
    [ "{"; "[1,]"; "{\"a\":}"; "tru"; "1.2.3"; "\"unterminated"; "{} trailing" ]

let json_accessors () =
  let v = J.parse {|{"a": {"b": 7}, "s": "x", "t": true}|} in
  check "mem_path hit" true (J.mem_path [ "a"; "b" ] v = Some (J.Num 7.0));
  check "mem_path miss" true (J.mem_path [ "a"; "z" ] v = None);
  check "to_num" true (Option.bind (J.mem_path [ "a"; "b" ] v) J.to_num = Some 7.0);
  check "to_str" true (Option.bind (J.member "s" v) J.to_str = Some "x");
  check "to_bool" true (Option.bind (J.member "t" v) J.to_bool = Some true)

(* -- Gate --------------------------------------------------------------- *)

(* A minimal results file of the harness's shape. *)
let results ?(digest = "d1") ?(identical = true) ?(runs = 16.0) ?(dijkstra = 1000.0)
    ?(events_per_sec = 1e7) () =
  J.Obj
    [
      ("schema_version", J.Num (float_of_int Check.schema_version));
      ("harness", J.Str "smrp-bench");
      ( "workload",
        J.Obj
          [
            ("fig9_digest", J.Str digest);
            ("seq_par_identical", J.Bool identical);
            ("fig9_metrics", J.Obj [ ("scenario.runs", J.Num runs); ("scenario.members", J.Num 480.0) ]);
          ] );
      ( "micro_ns_per_run",
        J.Obj [ ("dijkstra_n100", J.Num dijkstra); ("spf_build", J.Num 2000.0) ] );
      ("micro_throughput", J.Obj [ ("engine_events_per_sec", J.Num events_per_sec) ]);
    ]

let baseline = Check.baseline_of_results (results ())

let run ?quick ~res () = Check.check ?quick ~baseline ~results:res ()

let gate_passes_on_identical () =
  let r = run ~res:(results ()) () in
  check "passes" true (Check.passed r);
  check_int "no failures" 0 r.Check.failures;
  check "renders PASS" true
    (let s = Check.render r in
     String.length s > 0 && List.exists (fun l -> l = "PASS") (String.split_on_char '\n' s))

let gate_passes_within_tolerance () =
  (* Default tolerance is ±50%: +40% passes, and so does a large speed-up
     (improvements never fail, they only earn a note). *)
  check "slowdown within tolerance" true (Check.passed (run ~res:(results ~dijkstra:1400.0 ()) ()));
  let faster = run ~res:(results ~dijkstra:10.0 ()) () in
  check "improvement passes" true (Check.passed faster);
  check "improvement noted" true (faster.Check.notes <> [])

let gate_fails_on_micro_regression () =
  let r = run ~res:(results ~dijkstra:2000.0 ()) () in
  check "+100% fails at 50%" true (not (Check.passed r));
  check "renders FAIL with the metric" true
    (let s = Check.render r in
     List.exists (fun l -> l = "FAIL") (String.split_on_char '\n' s)
     && List.exists
          (fun row -> row.Check.metric = "micro.dijkstra_n100" && row.Check.status = Check.Regression)
          r.Check.rows);
  (* Quick mode multiplies the tolerance by quick_factor (4): 50% -> 200%,
     so the same +100% passes. *)
  check "quick mode widens tolerance" true
    (Check.passed (run ~quick:true ~res:(results ~dijkstra:2000.0 ()) ()))

let gate_throughput_direction_reversed () =
  (* micro_throughput is a rate: a drop beyond tolerance is the regression,
     a rise only earns the refresh note. *)
  let r = run ~res:(results ~events_per_sec:4e6 ()) () in
  check "-60% throughput fails at 50%" true (not (Check.passed r));
  check "flagged on the throughput row" true
    (List.exists
       (fun row ->
         row.Check.metric = "throughput.engine_events_per_sec"
         && row.Check.status = Check.Regression)
       r.Check.rows);
  let faster = run ~res:(results ~events_per_sec:3e7 ()) () in
  check "+200% throughput passes" true (Check.passed faster);
  check "improvement noted" true (faster.Check.notes <> []);
  check "small drop within tolerance passes" true
    (Check.passed (run ~res:(results ~events_per_sec:8e6 ()) ()));
  check "quick mode widens the drop tolerance" true
    (Check.passed (run ~quick:true ~res:(results ~events_per_sec:4e6 ()) ()))

let gate_fails_on_workload_drift () =
  let fails r = not (Check.passed r) in
  check "digest drift" true (fails (run ~res:(results ~digest:"d2" ()) ()));
  check "metric drift" true (fails (run ~res:(results ~runs:17.0 ()) ()));
  check "seq/par attestation" true (fails (run ~res:(results ~identical:false ()) ()));
  (* Workload drift is exact: quick mode must NOT excuse it. *)
  check "quick mode still exact on workload" true
    (fails (run ~quick:true ~res:(results ~runs:17.0 ()) ()))

let gate_fails_on_missing_and_schema () =
  let without_micro =
    match results () with
    | J.Obj members -> J.Obj (List.filter (fun (k, _) -> k <> "micro_ns_per_run") members)
    | _ -> assert false
  in
  let r = run ~res:without_micro () in
  check "missing baseline metrics fail" true (not (Check.passed r));
  check "flagged as missing" true
    (List.exists (fun row -> row.Check.status = Check.Missing) r.Check.rows);
  let wrong_schema =
    match results () with
    | J.Obj members ->
        J.Obj (List.map (fun (k, v) -> if k = "schema_version" then (k, J.Num 1.0) else (k, v)) members)
    | _ -> assert false
  in
  check "schema mismatch fails" true (not (Check.passed (run ~res:wrong_schema ())))

let baseline_derivation_shape () =
  check "derived baseline passes against its source" true (Check.passed (run ~res:(results ()) ()));
  check "tolerances present" true
    (J.mem_path [ "tolerances"; "micro_default_rel" ] baseline <> None);
  check "workload copied" true
    (J.mem_path [ "workload"; "fig9_digest" ] baseline = Some (J.Str "d1"));
  check "attestation not baked into baseline" true
    (J.mem_path [ "workload"; "seq_par_identical" ] baseline = None)

let () =
  Alcotest.run "bench_gate"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick json_roundtrip;
          Alcotest.test_case "rejects malformed" `Quick json_rejects_malformed;
          Alcotest.test_case "accessors" `Quick json_accessors;
        ] );
      ( "gate",
        [
          Alcotest.test_case "passes on identical" `Quick gate_passes_on_identical;
          Alcotest.test_case "passes within tolerance" `Quick gate_passes_within_tolerance;
          Alcotest.test_case "fails on micro regression" `Quick gate_fails_on_micro_regression;
          Alcotest.test_case "throughput direction reversed" `Quick
            gate_throughput_direction_reversed;
          Alcotest.test_case "fails on workload drift" `Quick gate_fails_on_workload_drift;
          Alcotest.test_case "fails on missing/schema" `Quick gate_fails_on_missing_and_schema;
          Alcotest.test_case "baseline derivation" `Quick baseline_derivation_shape;
        ] );
    ]
