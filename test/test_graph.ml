module Graph = Smrp_graph.Graph
module Dijkstra = Smrp_graph.Dijkstra
module Paths = Smrp_graph.Paths
module Connectivity = Smrp_graph.Connectivity
module Subgraph = Smrp_graph.Subgraph
module Fixtures = Smrp_topology.Fixtures

(* Property tests run with a pinned PRNG state so failures are
   reproducible run over run. *)
let qcheck_case t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 424242 |]) t

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let check_ilist = Alcotest.(check (list int))

(* -- Graph basics ------------------------------------------------------ *)

let build_basics () =
  let g = Graph.create 3 in
  let e01 = Graph.add_edge g 0 1 1.5 in
  let e12 = Graph.add_edge ~cost:7.0 g 1 2 2.5 in
  check_int "node count" 3 (Graph.node_count g);
  check_int "edge count" 2 (Graph.edge_count g);
  check_int "ids dense" 1 e12;
  check_float "delay" 1.5 (Graph.edge g e01).Graph.delay;
  check_float "cost defaults to delay" 1.5 (Graph.edge g e01).Graph.cost;
  check_float "explicit cost" 7.0 (Graph.edge g e12).Graph.cost;
  check_float "total cost" 8.5 (Graph.total_cost g);
  check_float "average degree" (4.0 /. 3.0) (Graph.average_degree g)

let rejects_bad_edges () =
  let g = Graph.create 2 in
  ignore (Graph.add_edge g 0 1 1.0);
  Alcotest.check_raises "duplicate" (Invalid_argument "Graph.add_edge: duplicate edge") (fun () ->
      ignore (Graph.add_edge g 1 0 1.0));
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop") (fun () ->
      ignore (Graph.add_edge g 0 0 1.0));
  Alcotest.check_raises "non-positive delay" (Invalid_argument "Graph.add_edge: delay must be positive")
    (fun () ->
      let g' = Graph.create 2 in
      ignore (Graph.add_edge g' 0 1 0.0))

let neighbors_and_lookup () =
  let g = Fixtures.diamond () in
  check_ilist "neighbors of 0" [ 1; 2 ] (List.map fst (Graph.neighbors g 0));
  check_int "degree" 2 (Graph.degree g 3);
  check "mem" true (Graph.mem_edge g 1 3);
  check "not mem" false (Graph.mem_edge g 0 3);
  let e = Option.get (Graph.edge_between g 2 3) in
  check_int "other end" 3 (Graph.other_end e 2);
  check_int "other end sym" 2 (Graph.other_end e 3)

let csr_matches_neighbors () =
  let g = Fixtures.diamond () in
  (* iter_neighbors enumerates exactly what neighbors lists, with the
     edge's delay attached, node by node. *)
  for u = 0 to Graph.node_count g - 1 do
    let seen = ref [] in
    Graph.iter_neighbors g u (fun v eid delay ->
        check_float (Printf.sprintf "delay of edge %d" eid) (Graph.edge g eid).Graph.delay delay;
        seen := (v, eid) :: !seen);
    Alcotest.(check (list (pair int int)))
      (Printf.sprintf "neighbors of %d" u)
      (Graph.neighbors g u) (List.rev !seen)
  done;
  (* The raw CSR arrays tell the same story. *)
  let offsets, nbr, eids, delays = Graph.csr g in
  check_int "offsets span" (Graph.node_count g + 1) (Array.length offsets);
  check_int "one slot per edge direction" (2 * Graph.edge_count g) (Array.length nbr);
  for u = 0 to Graph.node_count g - 1 do
    check_int (Printf.sprintf "degree of %d" u) (Graph.degree g u) (offsets.(u + 1) - offsets.(u));
    for i = offsets.(u) to offsets.(u + 1) - 1 do
      let e = Graph.edge g eids.(i) in
      check_int "neighbor is the other end" (Graph.other_end e u) nbr.(i);
      check_float "delay slot" e.Graph.delay delays.(i)
    done
  done

(* Degenerate freezes: the CSR arrays must keep their shape invariants
   (offsets has n+1 slots, all zero when there are no edges) so iteration
   and the raw-array consumers (Dspf, Protect) never special-case n <= 1. *)
let freeze_empty () =
  let g = Graph.create 0 in
  Graph.freeze g;
  let offsets, nbr, eids, delays = Graph.csr g in
  check_ilist "offsets of empty graph" [ 0 ] (Array.to_list offsets);
  check_int "no adjacency slots" 0 (Array.length nbr);
  check_int "no eid slots" 0 (Array.length eids);
  check_int "no delay slots" 0 (Array.length delays);
  (* Freeze is idempotent and survives a redundant second call. *)
  Graph.freeze g;
  check_int "still empty" 0 (Array.length (let _, a, _, _ = Graph.csr g in a))

let freeze_single_node () =
  let g = Graph.create 1 in
  Graph.freeze g;
  let offsets, nbr, _, _ = Graph.csr g in
  check_ilist "offsets of 1-node graph" [ 0; 0 ] (Array.to_list offsets);
  check_int "no adjacency slots" 0 (Array.length nbr);
  check_int "degree of the only node" 0 (Graph.degree g 0);
  let visited = ref 0 in
  Graph.iter_neighbors g 0 (fun _ _ _ -> incr visited);
  check_int "iteration visits nothing" 0 !visited;
  Alcotest.(check (list (pair int int))) "neighbors empty" [] (Graph.neighbors g 0)

let csr_rebuilds_after_mutation () =
  let g = Graph.create 3 in
  ignore (Graph.add_edge g 0 1 1.0);
  Graph.freeze g;
  let count u =
    let c = ref 0 in
    Graph.iter_neighbors g u (fun _ _ _ -> incr c);
    !c
  in
  check_int "degree before" 1 (count 0);
  (* Adding an edge invalidates the frozen view; the next read rebuilds. *)
  ignore (Graph.add_edge g 0 2 1.0);
  check_int "degree after" 2 (count 0);
  check "new edge visible to mem_edge" true (Graph.mem_edge g 2 0);
  check "absent edge" false (Graph.mem_edge g 1 2)

(* -- Dijkstra ---------------------------------------------------------- *)

let line_distances () =
  let g = Fixtures.line 5 in
  let r = Dijkstra.run g ~source:0 in
  List.iteri
    (fun i expected -> check_float (Printf.sprintf "dist to %d" i) expected (Option.get (Dijkstra.distance r i)))
    [ 0.0; 1.0; 2.0; 3.0; 4.0 ];
  check_ilist "path nodes" [ 0; 1; 2; 3 ] (Option.get (Dijkstra.path_nodes r 3));
  check_int "path edge count" 3 (List.length (Option.get (Dijkstra.path_edges r 3)))

let grid_distance () =
  let g = Fixtures.grid 4 in
  let r = Dijkstra.run g ~source:0 in
  check_float "manhattan corner" 6.0 (Option.get (Dijkstra.distance r 15))

let blocked_node_forces_detour () =
  let g = Fixtures.diamond () in
  let r = Dijkstra.run ~node_ok:(fun v -> v <> 1) g ~source:0 in
  check_float "detour via 2" 2.0 (Option.get (Dijkstra.distance r 3));
  check_ilist "path avoids 1" [ 0; 2; 3 ] (Option.get (Dijkstra.path_nodes r 3))

let blocked_edge_forces_detour () =
  let g = Fixtures.ring 4 in
  let eid = (Option.get (Graph.edge_between g 0 1)).Graph.id in
  let r = Dijkstra.run ~edge_ok:(fun e -> e <> eid) g ~source:0 in
  check_float "around the ring" 3.0 (Option.get (Dijkstra.distance r 1))

let unreachable () =
  let g = Graph.create 3 in
  ignore (Graph.add_edge g 0 1 1.0);
  let r = Dijkstra.run g ~source:0 in
  check "no distance" true (Dijkstra.distance r 2 = None);
  check "no path" true (Dijkstra.path_nodes r 2 = None);
  check "reachable" true (Dijkstra.reachable r 1)

let absorbing_stops_relaxation () =
  (* Line 0-1-2-3 where 1 absorbs: 2 and 3 must be unreachable even though
     the graph connects them through 1. *)
  let g = Fixtures.line 4 in
  let r = Dijkstra.run ~absorb:(fun v -> v = 1) g ~source:0 in
  check "reaches absorber" true (Dijkstra.reachable r 1);
  check "cannot pass through" false (Dijkstra.reachable r 2)

let absorbing_source_still_relaxes () =
  let g = Fixtures.line 3 in
  let r = Dijkstra.run ~absorb:(fun v -> v = 0) g ~source:0 in
  check "source absorb ignored" true (Dijkstra.reachable r 2)

let absorbing_picks_off_tree_interior () =
  (* Diamond: target 3 absorbing, both 1 and 2 ordinary: path goes through
     the cheaper interior. *)
  let g = Fixtures.diamond () in
  let r = Dijkstra.run ~absorb:(fun v -> v = 1 || v = 3) g ~source:0 in
  check_float "direct to 1" 1.0 (Option.get (Dijkstra.distance r 1));
  check_ilist "to 3 via 2 only" [ 0; 2; 3 ] (Option.get (Dijkstra.path_nodes r 3))

let shortest_path_convenience () =
  let g = Fixtures.diamond () in
  match Dijkstra.shortest_path g ~src:0 ~dst:3 with
  | Some (d, nodes, edges) ->
      check_float "delay" 2.0 d;
      check_int "nodes" 3 (List.length nodes);
      check_int "edges" 2 (List.length edges)
  | None -> Alcotest.fail "expected path"

(* -- Paths ------------------------------------------------------------- *)

let path_of_edges () =
  let g = Fixtures.line 4 in
  let edges = Option.get (Dijkstra.path_edges (Dijkstra.run g ~source:0) 3) in
  let p = Paths.of_edges g ~src:0 edges in
  check_float "delay" 3.0 p.Paths.delay;
  check_ilist "nodes" [ 0; 1; 2; 3 ] p.Paths.nodes;
  check "simple" true (Paths.is_simple p)

let path_concat () =
  let g = Fixtures.line 5 in
  let e01 = (Option.get (Graph.edge_between g 0 1)).Graph.id in
  let e12 = (Option.get (Graph.edge_between g 1 2)).Graph.id in
  let p = Paths.of_edges g ~src:0 [ e01 ] in
  let q = Paths.of_edges g ~src:1 [ e12 ] in
  let pq = Paths.concat p q in
  check_ilist "joined" [ 0; 1; 2 ] pq.Paths.nodes;
  check_float "delay adds" 2.0 pq.Paths.delay;
  Alcotest.check_raises "mismatched concat" (Invalid_argument "Paths.concat: endpoints do not meet")
    (fun () -> ignore (Paths.concat q p))

let yen_diamond () =
  let g = Fixtures.diamond () in
  let paths = Paths.yen ~k:3 g ~src:0 ~dst:3 in
  check_int "two disjoint paths exist" 2 (List.length paths);
  check "sorted" true
    (let ds = List.map (fun p -> p.Paths.delay) paths in
     List.sort compare ds = ds);
  List.iter (fun p -> check "loopless" true (Paths.is_simple p)) paths

let yen_ring () =
  let g = Fixtures.ring 6 in
  let paths = Paths.yen ~k:5 g ~src:0 ~dst:2 in
  check_int "both ways around" 2 (List.length paths);
  check_float "short way" 2.0 (List.hd paths).Paths.delay;
  check_float "long way" 4.0 (List.nth paths 1).Paths.delay

let yen_distinct () =
  let g = Fixtures.grid 3 in
  let paths = Paths.yen ~k:4 g ~src:0 ~dst:8 in
  check_int "four paths" 4 (List.length paths);
  let keys = List.map (fun p -> p.Paths.edges) paths in
  check "all distinct" true (List.length (List.sort_uniq compare keys) = 4)

let yen_respects_filters () =
  (* With node 1 filtered out of the diamond, only the 0-2-3 path remains. *)
  let g = Fixtures.diamond () in
  let paths = Paths.yen ~k:3 ~node_ok:(fun v -> v <> 1) g ~src:0 ~dst:3 in
  check_int "single path" 1 (List.length paths);
  check_ilist "the surviving route" [ 0; 2; 3 ] (List.hd paths).Paths.nodes

let yen_zero_k () =
  let g = Fixtures.diamond () in
  check_int "k=0 yields nothing" 0 (List.length (Paths.yen ~k:0 g ~src:0 ~dst:3))

(* -- Connectivity ------------------------------------------------------ *)

let components_basic () =
  let g = Graph.create 5 in
  ignore (Graph.add_edge g 0 1 1.0);
  ignore (Graph.add_edge g 2 3 1.0);
  let comp, count = Connectivity.components g in
  check_int "three components" 3 count;
  check "0 and 1 together" true (comp.(0) = comp.(1));
  check "2 and 3 together" true (comp.(2) = comp.(3));
  check "4 alone" true (comp.(4) <> comp.(0) && comp.(4) <> comp.(2))

let filtered_connectivity () =
  let g = Fixtures.ring 5 in
  let eid = (Option.get (Graph.edge_between g 0 1)).Graph.id in
  check "ring stays connected without one edge" true
    (Connectivity.is_connected ~edge_ok:(fun e -> e <> eid) g);
  let eid2 = (Option.get (Graph.edge_between g 2 3)).Graph.id in
  check "two cuts split it" false
    (Connectivity.is_connected ~edge_ok:(fun e -> e <> eid && e <> eid2) g)

let reachable_from () =
  let g = Fixtures.line 4 in
  let seen = Connectivity.reachable_from ~node_ok:(fun v -> v <> 2) g 0 in
  check "reaches 1" true seen.(1);
  check "blocked at 2" false seen.(2);
  check "cannot pass" false seen.(3)

let bridges_line () =
  let g = Fixtures.line 4 in
  check_int "all edges are bridges" 3 (List.length (Connectivity.bridges g))

let bridges_ring () =
  let g = Fixtures.ring 5 in
  check_ilist "no bridges in a cycle" [] (Connectivity.bridges g)

let bridges_mixed () =
  (* A triangle with a pendant: only the pendant edge is a bridge. *)
  let g = Graph.create 4 in
  ignore (Graph.add_edge g 0 1 1.0);
  ignore (Graph.add_edge g 1 2 1.0);
  ignore (Graph.add_edge g 2 0 1.0);
  let pendant = Graph.add_edge g 2 3 1.0 in
  check_ilist "pendant only" [ pendant ] (Connectivity.bridges g)

let articulation_star () =
  let g = Graph.create 4 in
  ignore (Graph.add_edge g 0 1 1.0);
  ignore (Graph.add_edge g 0 2 1.0);
  ignore (Graph.add_edge g 0 3 1.0);
  check_ilist "hub is the cut vertex" [ 0 ] (Connectivity.articulation_points g)

let articulation_ring () =
  let g = Fixtures.ring 5 in
  check_ilist "cycle has none" [] (Connectivity.articulation_points g)

(* -- Subgraph ---------------------------------------------------------- *)

let subgraph_extract () =
  let g = Fixtures.diamond () in
  let sub = Subgraph.extract g ~keep:(fun v -> v <> 1) in
  check_int "three nodes" 3 (Graph.node_count sub.Subgraph.graph);
  check_int "two edges" 2 (Graph.edge_count sub.Subgraph.graph);
  check "dropped node unmapped" true (Subgraph.node_to_sub sub 1 = None);
  let s0 = Option.get (Subgraph.node_to_sub sub 0) in
  check_int "round trip" 0 (Subgraph.node_from_sub sub s0);
  (* Edge ids map back onto original ids. *)
  Array.iteri
    (fun sub_id orig_id ->
      let se = Graph.edge sub.Subgraph.graph sub_id in
      let oe = Graph.edge g orig_id in
      check_float "delay preserved" oe.Graph.delay se.Graph.delay)
    sub.Subgraph.edge_from_sub

let subgraph_preserves_costs () =
  let g = Graph.create 3 in
  ignore (Graph.add_edge ~cost:9.0 g 0 1 2.0);
  ignore (Graph.add_edge g 1 2 3.0);
  let sub = Subgraph.extract g ~keep:(fun _ -> true) in
  check_float "cost preserved" 9.0 (Graph.edge sub.Subgraph.graph 0).Graph.cost

(* -- Properties -------------------------------------------------------- *)

let random_graph seed n extra_edges =
  let rng = Smrp_rng.Rng.create seed in
  let g = Graph.create n in
  (* Random spanning tree plus chords: always connected. *)
  for v = 1 to n - 1 do
    let u = Smrp_rng.Rng.int rng v in
    ignore (Graph.add_edge g u v (0.1 +. Smrp_rng.Rng.float rng 5.0))
  done;
  for _ = 1 to extra_edges do
    let u = Smrp_rng.Rng.int rng n and v = Smrp_rng.Rng.int rng n in
    if u <> v && not (Graph.mem_edge g u v) then
      ignore (Graph.add_edge g u v (0.1 +. Smrp_rng.Rng.float rng 5.0))
  done;
  g

let qcheck_triangle_inequality =
  QCheck.Test.make ~name:"dijkstra satisfies the triangle inequality on edges" ~count:100
    QCheck.(pair small_int (int_range 2 40))
    (fun (seed, n) ->
      let g = random_graph seed n n in
      let r = Dijkstra.run g ~source:0 in
      Graph.fold_edges
        (fun ok e ->
          ok
          &&
          match (Dijkstra.distance r e.Graph.u, Dijkstra.distance r e.Graph.v) with
          | Some du, Some dv -> dv <= du +. e.Graph.delay +. 1e-9 && du <= dv +. e.Graph.delay +. 1e-9
          | _ -> false)
        true g)

let qcheck_yen_sorted_loopless =
  QCheck.Test.make ~name:"yen paths are loopless, distinct and sorted" ~count:60
    QCheck.(pair small_int (int_range 4 25))
    (fun (seed, n) ->
      let g = random_graph seed n (2 * n) in
      let paths = Paths.yen ~k:4 g ~src:0 ~dst:(n - 1) in
      let sorted = List.map (fun p -> p.Paths.delay) paths in
      List.for_all Paths.is_simple paths
      && List.sort compare sorted = sorted
      && List.length (List.sort_uniq compare (List.map (fun p -> p.Paths.edges) paths))
         = List.length paths)

let qcheck_bridge_removal_disconnects =
  QCheck.Test.make ~name:"removing a bridge disconnects; removing a non-bridge does not" ~count:60
    QCheck.(pair small_int (int_range 3 30))
    (fun (seed, n) ->
      let g = random_graph seed n (n / 2) in
      let bridges = Connectivity.bridges g in
      Graph.fold_edges
        (fun ok e ->
          ok
          &&
          let still = Connectivity.is_connected ~edge_ok:(fun id -> id <> e.Graph.id) g in
          if List.mem e.Graph.id bridges then not still else still)
        true g)

let () =
  Alcotest.run "graph"
    [
      ( "basics",
        [
          Alcotest.test_case "build and inspect" `Quick build_basics;
          Alcotest.test_case "rejects bad edges" `Quick rejects_bad_edges;
          Alcotest.test_case "neighbors and lookup" `Quick neighbors_and_lookup;
          Alcotest.test_case "CSR matches neighbors" `Quick csr_matches_neighbors;
          Alcotest.test_case "freeze empty graph" `Quick freeze_empty;
          Alcotest.test_case "freeze single node" `Quick freeze_single_node;
          Alcotest.test_case "CSR rebuilds after mutation" `Quick csr_rebuilds_after_mutation;
        ] );
      ( "dijkstra",
        [
          Alcotest.test_case "line distances" `Quick line_distances;
          Alcotest.test_case "grid distance" `Quick grid_distance;
          Alcotest.test_case "blocked node detour" `Quick blocked_node_forces_detour;
          Alcotest.test_case "blocked edge detour" `Quick blocked_edge_forces_detour;
          Alcotest.test_case "unreachable" `Quick unreachable;
          Alcotest.test_case "absorbing stops relaxation" `Quick absorbing_stops_relaxation;
          Alcotest.test_case "absorbing source still relaxes" `Quick absorbing_source_still_relaxes;
          Alcotest.test_case "absorbing interior choice" `Quick absorbing_picks_off_tree_interior;
          Alcotest.test_case "shortest_path convenience" `Quick shortest_path_convenience;
        ] );
      ( "paths",
        [
          Alcotest.test_case "of_edges" `Quick path_of_edges;
          Alcotest.test_case "concat" `Quick path_concat;
          Alcotest.test_case "yen on diamond" `Quick yen_diamond;
          Alcotest.test_case "yen on ring" `Quick yen_ring;
          Alcotest.test_case "yen distinct on grid" `Quick yen_distinct;
          Alcotest.test_case "yen respects filters" `Quick yen_respects_filters;
          Alcotest.test_case "yen k=0" `Quick yen_zero_k;
        ] );
      ( "connectivity",
        [
          Alcotest.test_case "components" `Quick components_basic;
          Alcotest.test_case "filtered connectivity" `Quick filtered_connectivity;
          Alcotest.test_case "reachable_from" `Quick reachable_from;
          Alcotest.test_case "bridges on a line" `Quick bridges_line;
          Alcotest.test_case "bridges on a ring" `Quick bridges_ring;
          Alcotest.test_case "bridges mixed" `Quick bridges_mixed;
          Alcotest.test_case "articulation star" `Quick articulation_star;
          Alcotest.test_case "articulation ring" `Quick articulation_ring;
        ] );
      ( "subgraph",
        [
          Alcotest.test_case "extract" `Quick subgraph_extract;
          Alcotest.test_case "costs preserved" `Quick subgraph_preserves_costs;
        ] );
      ( "properties",
        [
          qcheck_case qcheck_triangle_inequality;
          qcheck_case qcheck_yen_sorted_loopless;
          qcheck_case qcheck_bridge_removal_disconnects;
        ] );
    ]
