(* Observability layer: metrics registry, tracer/sinks, recovery timelines,
   and their integration with the simulator. *)

module Metrics = Smrp_obs.Metrics
module Trace = Smrp_obs.Trace
module Timeline = Smrp_obs.Timeline
module Obs = Smrp_obs.Obs
module Engine = Smrp_sim.Engine
module Net = Smrp_sim.Net
module Protocol = Smrp_sim.Protocol
module Graph = Smrp_graph.Graph
module Fixtures = Smrp_topology.Fixtures

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let edge g u v = (Option.get (Graph.edge_between g u v)).Graph.id

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  at 0

(* -- Metrics ------------------------------------------------------------ *)

let counter_and_gauge () =
  let m = Metrics.create () in
  let c = Metrics.counter m "c" in
  Metrics.Counter.incr c;
  Metrics.Counter.add c 4;
  check_int "counter" 5 (Metrics.Counter.value c);
  check_int "same instrument by name" 5 (Metrics.Counter.value (Metrics.counter m "c"));
  Alcotest.check_raises "negative add" (Invalid_argument "Metrics.Counter.add: negative increment")
    (fun () -> Metrics.Counter.add c (-1));
  let g = Metrics.gauge m "g" in
  Metrics.Gauge.set g 7.0;
  Metrics.Gauge.set g 3.0;
  Alcotest.(check (float 0.0)) "last" 3.0 (Metrics.Gauge.value g);
  Alcotest.(check (float 0.0)) "max" 7.0 (Metrics.Gauge.max_value g);
  Alcotest.check_raises "kind clash" (Invalid_argument "Metrics: \"c\" already registered as a counter")
    (fun () -> ignore (Metrics.gauge m "c"))

let bucket_of h v =
  Metrics.Histogram.observe h v;
  let rec first_nonzero i = function
    | (_, 0) :: rest -> first_nonzero (i + 1) rest
    | (bound, _) :: _ -> (i, bound)
    | [] -> Alcotest.fail "no bucket incremented"
  in
  first_nonzero 0 (Metrics.Histogram.buckets h)

let histogram_bucketing () =
  let m = Metrics.create () in
  (* Bounds: 1e-3, 1e-2, 1e-1, 1, 10 (+ overflow). *)
  let fresh name = Metrics.histogram m ~base:10.0 ~lowest:1e-3 ~count:5 name in
  (* Zero and negatives land in the lowest bucket. *)
  check_int "zero -> bucket 0" 0 (fst (bucket_of (fresh "h0") 0.0));
  check_int "negative -> bucket 0" 0 (fst (bucket_of (fresh "h1") (-3.0)));
  (* Exact bound values stay in their bucket (upper bounds are inclusive). *)
  check_int "v = lowest -> bucket 0" 0 (fst (bucket_of (fresh "h2") 1e-3));
  check_int "v = 1.0 -> bucket 3" 3 (fst (bucket_of (fresh "h3") 1.0));
  (* Just above a bound rolls over. *)
  check_int "just above lowest" 1 (fst (bucket_of (fresh "h4") 1.0000001e-3));
  (* Beyond the last bound -> overflow bucket with an infinite bound. *)
  let i, bound = bucket_of (fresh "h5") 1e9 in
  check_int "overflow index" 5 i;
  check "overflow bound" true (bound = infinity);
  (* count/sum accumulate over all observations. *)
  let h = fresh "h6" in
  List.iter (Metrics.Histogram.observe h) [ 0.5; 2.0; 2.5 ];
  check_int "count" 3 (Metrics.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 5.0 (Metrics.Histogram.sum h);
  check_int "bucket list length" 6 (List.length (Metrics.Histogram.buckets h))

let snapshot_sorted_and_rendered () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "zz");
  ignore (Metrics.gauge m "aa");
  ignore (Metrics.histogram m "mm");
  (match List.map fst (Metrics.snapshot m) with
  | [ "aa"; "mm"; "zz" ] -> ()
  | names -> Alcotest.failf "unsorted snapshot: %s" (String.concat "," names));
  check "render mentions every instrument" true
    (let r = Metrics.render m in
     List.for_all (fun n -> contains ~affix:n r) [ "aa"; "mm"; "zz" ])

(* -- Trace -------------------------------------------------------------- *)

let span_nesting_in_ring () =
  let sink = Trace.ring ~capacity:100 in
  let t = Trace.create sink in
  check "enabled" true (Trace.enabled t);
  check "null disabled" false (Trace.enabled Trace.null);
  Trace.begin_span t ~ts:1.0 ~tid:3 "outer";
  Trace.begin_span t ~ts:2.0 ~tid:3 "inner";
  Trace.instant t ~ts:2.5 ~tid:3 "tick";
  Trace.end_span t ~ts:3.0 ~tid:3 "inner";
  Trace.end_span t ~ts:4.0 ~tid:3 "outer";
  match Trace.ring_contents sink with
  | [ a; b; c; d; e ] ->
      check "outer opens" true (a.Trace.ph = Trace.Begin && a.Trace.name = "outer");
      check "inner nested" true (b.Trace.ph = Trace.Begin && b.Trace.name = "inner");
      check "instant inside" true (c.Trace.ph = Trace.Instant && c.Trace.ts = 2.5);
      check "inner closes first" true (d.Trace.ph = Trace.End && d.Trace.name = "inner");
      check "outer closes last" true (e.Trace.ph = Trace.End && e.Trace.name = "outer")
  | evs -> Alcotest.failf "expected 5 events, got %d" (List.length evs)

let ring_keeps_last_events () =
  let sink = Trace.ring ~capacity:3 in
  let t = Trace.create sink in
  for i = 1 to 5 do
    Trace.instant t ~ts:(float_of_int i) "e"
  done;
  match Trace.ring_contents sink with
  | [ a; b; c ] ->
      Alcotest.(check (list (float 0.0))) "last three" [ 3.0; 4.0; 5.0 ] [ a.Trace.ts; b.Trace.ts; c.Trace.ts ]
  | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs)

let json_shape () =
  let e =
    {
      Trace.ts = 1.5;
      name = "fra\"me";
      cat = "net";
      ph = Trace.Complete 0.25;
      pid = 2;
      tid = 7;
      args = [ ("dst", Trace.Int 3) ];
    }
  in
  let j = Trace.to_json e in
  List.iter
    (fun affix -> check ("json contains " ^ affix) true (contains ~affix j))
    [
      "\"ph\":\"X\"";
      "\"ts\":1500000";
      "\"dur\":250000";
      "\"name\":\"fra\\\"me\"";
      "\"cat\":\"net\"";
      "\"pid\":2";
      "\"tid\":7";
      "\"args\":{\"dst\":3}";
    ]

(* One fully instrumented seeded simulation; used by the determinism and
   smoke tests below. *)
let instrumented_run sink =
  let obs = Obs.create ?sink ()  in
  let engine = Engine.create ~obs () in
  let g = Fixtures.ring 5 in
  let p = Protocol.create engine g ~source:0 in
  Protocol.start p;
  ignore (Engine.schedule engine ~delay:0.5 (fun () -> Protocol.join p 2));
  ignore (Engine.schedule engine ~delay:1.5 (fun () -> Protocol.join p 3));
  Engine.run ~until:20.0 engine;
  Protocol.inject_link_failure p (edge g 0 1);
  Engine.run ~until:60.0 engine;
  (obs, p)

let sinks_deterministic_across_runs () =
  (* Two identical seeded runs must produce byte-identical JSONL and equal
     ring contents — traces are keyed on the simulation clock, not wall
     time. *)
  let jsonl_run () =
    let buf = Buffer.create 4096 in
    let sink = Trace.jsonl (fun line -> Buffer.add_string buf line; Buffer.add_char buf '\n') in
    let obs, _ = instrumented_run (Some sink) in
    (Buffer.contents buf, Metrics.render (Obs.metrics obs))
  in
  let j1, m1 = jsonl_run () in
  let j2, m2 = jsonl_run () in
  check "jsonl non-trivial" true (String.length j1 > 1000);
  check "jsonl identical" true (String.equal j1 j2);
  check "metrics render identical" true (String.equal m1 m2);
  let ring_run () =
    let sink = Trace.ring ~capacity:100_000 in
    ignore (instrumented_run (Some sink));
    Trace.ring_contents sink
  in
  check "ring contents identical" true (ring_run () = ring_run ())

(* -- Timeline ----------------------------------------------------------- *)

let timeline_recorder_guards () =
  let r = Timeline.create () in
  (* Milestones before the failure are ignored. *)
  Timeline.note_detected r ~member:1 ~ts:0.5;
  check "no episode before failure" true (Timeline.episodes r = []);
  Timeline.note_failure r ~ts:1.0;
  Timeline.note_detected r ~member:1 ~ts:1.5;
  Timeline.note_detected r ~member:1 ~ts:9.9 (* first detection wins *);
  Timeline.note_signalled r ~member:1 ~ts:1.6;
  Timeline.note_installed r ~member:1 ~ts:1.8;
  Timeline.note_installed r ~member:1 ~ts:1.9 (* refresh re-confirmation: ignored *);
  Timeline.note_first_data r ~member:1 ~ts:2.0;
  Timeline.note_signalled r ~member:1 ~ts:5.0 (* closed: ignored *);
  match Timeline.episodes r with
  | [ e ] ->
      check_int "member" 1 e.Timeline.member;
      check_int "attempts" 1 e.Timeline.attempts;
      let d = Timeline.phase_durations e in
      let get p = Option.get (List.assoc p d) in
      Alcotest.(check (float 1e-9)) "detection" 0.5 (get Timeline.Detection);
      Alcotest.(check (float 1e-9)) "signalling" 0.1 (get Timeline.Signalling);
      Alcotest.(check (float 1e-9)) "installation" 0.2 (get Timeline.Installation);
      Alcotest.(check (float 1e-9)) "first data" 0.2 (get Timeline.First_data);
      Alcotest.(check (float 1e-9)) "total" 1.0 (Option.get (Timeline.total e));
      check "render has a row" true (contains ~affix:"1" (Timeline.render [ e ]))
  | eps -> Alcotest.failf "expected one episode, got %d" (List.length eps)

let protocol_emits_well_formed_timeline () =
  (* Smoke test: a recovery run produces a complete, ordered episode whose
     milestones bracket the member's reported detection/restoration. *)
  let sink = Trace.ring ~capacity:100_000 in
  let obs, p = instrumented_run (Some sink) in
  let eps = Protocol.timeline p in
  check "episodes recorded" true (eps <> []);
  List.iter
    (fun (e : Timeline.episode) ->
      List.iter
        (fun (p, d) ->
          match d with
          | Some d -> check (Timeline.phase_name p ^ " non-negative") true (d >= 0.0)
          | None -> Alcotest.failf "missing %s milestone" (Timeline.phase_name p))
        (Timeline.phase_durations e);
      let report = List.find (fun r -> r.Protocol.member = e.Timeline.member) (Protocol.reports p) in
      (match (report.Protocol.restored, Timeline.total e) with
      | Some restored, Some total -> Alcotest.(check (float 1e-9)) "total = reported restoration" restored total
      | _ -> Alcotest.fail "member not restored"))
    eps;
  (* The phase table renders one row per episode. *)
  let table = Protocol.phase_table p in
  check "table has header" true (contains ~affix:"detect(s)" table);
  (* The trace carries the recovery lifecycle for each disrupted member. *)
  let events = Trace.ring_contents sink in
  let count ?ph name =
    List.length
      (List.filter
         (fun e -> e.Trace.name = name && match ph with Some p -> e.Trace.ph = p | None -> true)
         events)
  in
  check_int "failure instant" 1 (count "failure");
  check_int "one recovery span open per episode" (List.length eps) (count ~ph:Trace.Begin "recovery");
  check_int "every recovery span closes" (List.length eps) (count ~ph:Trace.End "recovery");
  check "detected instants" true (count "detected" >= List.length eps);
  check "first_data instants" true (count "first_data" >= List.length eps);
  (* Metrics: engine, net and recovery-phase instruments are live. *)
  let m = Metrics.render (Obs.metrics obs) in
  List.iter
    (fun affix -> check ("metrics contain " ^ affix) true (contains ~affix m))
    [ "engine.events_fired"; "net.frames_sent"; "recovery.phase.detection"; "recovery.total" ]

let noop_sink_costs_nothing_extra () =
  (* With no obs context at all, the same run still records timelines and
     reports; the instrumentation has no visible side effects. *)
  let _, p = instrumented_run None in
  check "timeline recorded without obs" true (Protocol.timeline p <> []);
  check "members restored" true
    (List.for_all
       (fun (r : Protocol.member_report) -> r.Protocol.restored <> None)
       (List.filter (fun (r : Protocol.member_report) -> r.Protocol.detected <> None) (Protocol.reports p)))

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter and gauge" `Quick counter_and_gauge;
          Alcotest.test_case "histogram bucketing" `Quick histogram_bucketing;
          Alcotest.test_case "snapshot sorted" `Quick snapshot_sorted_and_rendered;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick span_nesting_in_ring;
          Alcotest.test_case "ring keeps last" `Quick ring_keeps_last_events;
          Alcotest.test_case "json shape" `Quick json_shape;
          Alcotest.test_case "sinks deterministic" `Quick sinks_deterministic_across_runs;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "recorder guards" `Quick timeline_recorder_guards;
          Alcotest.test_case "protocol timeline well-formed" `Quick protocol_emits_well_formed_timeline;
          Alcotest.test_case "no-op path" `Quick noop_sink_costs_nothing_extra;
        ] );
    ]
