(* Observability layer: metrics registry, tracer/sinks, recovery timelines,
   and their integration with the simulator. *)

module Metrics = Smrp_obs.Metrics
module Trace = Smrp_obs.Trace
module Timeline = Smrp_obs.Timeline
module Causal = Smrp_obs.Causal
module Obs = Smrp_obs.Obs
module Engine = Smrp_sim.Engine
module Net = Smrp_sim.Net
module Protocol = Smrp_sim.Protocol
module Graph = Smrp_graph.Graph
module Fixtures = Smrp_topology.Fixtures

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let edge g u v = (Option.get (Graph.edge_between g u v)).Graph.id

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  at 0

(* -- Metrics ------------------------------------------------------------ *)

let counter_and_gauge () =
  let m = Metrics.create () in
  let c = Metrics.counter m "c" in
  Metrics.Counter.incr c;
  Metrics.Counter.add c 4;
  check_int "counter" 5 (Metrics.Counter.value c);
  check_int "same instrument by name" 5 (Metrics.Counter.value (Metrics.counter m "c"));
  Alcotest.check_raises "negative add" (Invalid_argument "Metrics.Counter.add: negative increment")
    (fun () -> Metrics.Counter.add c (-1));
  let g = Metrics.gauge m "g" in
  Metrics.Gauge.set g 7.0;
  Metrics.Gauge.set g 3.0;
  Alcotest.(check (float 0.0)) "last" 3.0 (Metrics.Gauge.value g);
  Alcotest.(check (float 0.0)) "max" 7.0 (Metrics.Gauge.max_value g);
  Alcotest.check_raises "kind clash" (Invalid_argument "Metrics: \"c\" already registered as a counter")
    (fun () -> ignore (Metrics.gauge m "c"))

let bucket_of h v =
  Metrics.Histogram.observe h v;
  let rec first_nonzero i = function
    | (_, 0) :: rest -> first_nonzero (i + 1) rest
    | (bound, _) :: _ -> (i, bound)
    | [] -> Alcotest.fail "no bucket incremented"
  in
  first_nonzero 0 (Metrics.Histogram.buckets h)

let histogram_bucketing () =
  let m = Metrics.create () in
  (* Bounds: 1e-3, 1e-2, 1e-1, 1, 10 (+ overflow). *)
  let fresh name = Metrics.histogram m ~base:10.0 ~lowest:1e-3 ~count:5 name in
  (* Zero and negatives land in the lowest bucket. *)
  check_int "zero -> bucket 0" 0 (fst (bucket_of (fresh "h0") 0.0));
  check_int "negative -> bucket 0" 0 (fst (bucket_of (fresh "h1") (-3.0)));
  (* Exact bound values stay in their bucket (upper bounds are inclusive). *)
  check_int "v = lowest -> bucket 0" 0 (fst (bucket_of (fresh "h2") 1e-3));
  check_int "v = 1.0 -> bucket 3" 3 (fst (bucket_of (fresh "h3") 1.0));
  (* Just above a bound rolls over. *)
  check_int "just above lowest" 1 (fst (bucket_of (fresh "h4") 1.0000001e-3));
  (* Beyond the last bound -> overflow bucket with an infinite bound. *)
  let i, bound = bucket_of (fresh "h5") 1e9 in
  check_int "overflow index" 5 i;
  check "overflow bound" true (bound = infinity);
  (* count/sum accumulate over all observations. *)
  let h = fresh "h6" in
  List.iter (Metrics.Histogram.observe h) [ 0.5; 2.0; 2.5 ];
  check_int "count" 3 (Metrics.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 5.0 (Metrics.Histogram.sum h);
  check_int "bucket list length" 6 (List.length (Metrics.Histogram.buckets h))

let snapshot_sorted_and_rendered () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "zz");
  ignore (Metrics.gauge m "aa");
  ignore (Metrics.histogram m "mm");
  (match List.map fst (Metrics.snapshot m) with
  | [ "aa"; "mm"; "zz" ] -> ()
  | names -> Alcotest.failf "unsorted snapshot: %s" (String.concat "," names));
  check "render mentions every instrument" true
    (let r = Metrics.render m in
     List.for_all (fun n -> contains ~affix:n r) [ "aa"; "mm"; "zz" ])

(* -- Sharded metrics across domains ------------------------------------- *)

(* Run [body k] on 4 domains (k = 0..3) against a shared registry and
   return the registry once all have joined (a quiescent snapshot). *)
let on_four_domains body =
  let m = Metrics.create () in
  let domains = Array.init 4 (fun k -> Domain.spawn (fun () -> body m k)) in
  Array.iter Domain.join domains;
  m

let find_value m name =
  match List.assoc_opt name (Metrics.snapshot m) with
  | Some v -> v
  | None -> Alcotest.failf "instrument %S missing from snapshot" name

let sharded_hammer_exact_totals () =
  (* The satellite-1 hammer: every domain mutates its private shard through
     the plain unsynchronized hot path; the merged totals must be exact. *)
  (* Divisible by 3 so each domain's 1/2/3 rotation is exactly balanced. *)
  let per_domain = 60_000 in
  let m =
    on_four_domains (fun m k ->
        let c = Metrics.counter m "hammer.count" in
        let h = Metrics.histogram m ~base:2.0 ~lowest:1.0 ~count:4 "hammer.hist" in
        for i = 1 to per_domain do
          Metrics.Counter.incr c;
          Metrics.Histogram.observe h (float_of_int (1 + ((i + k) mod 3)))
        done;
        Metrics.Gauge.set (Metrics.gauge m "hammer.gauge") ~ts:(float_of_int k)
          (float_of_int (10 * k)))
  in
  check_int "one shard per domain" 4 (Metrics.shard_count m);
  (match find_value m "hammer.count" with
  | Metrics.Counter_value n -> check_int "counter total" (4 * per_domain) n
  | _ -> Alcotest.fail "hammer.count is not a counter");
  (match find_value m "hammer.hist" with
  | Metrics.Histogram_value { count; sum; buckets } ->
      check_int "histogram count" (4 * per_domain) count;
      (* Each domain observes 1, 2 and 3 in a rotation over [per_domain]
         observations; summed over the 4 offsets the multiset is exactly
         balanced, so the total is 4 * per_domain * 2. *)
      Alcotest.(check (float 0.0)) "histogram sum exact" (float_of_int (8 * per_domain)) sum;
      check_int "bucket mass conserved" (4 * per_domain)
        (List.fold_left (fun acc (_, n) -> acc + n) 0 buckets)
  | _ -> Alcotest.fail "hammer.hist is not a histogram");
  match find_value m "hammer.gauge" with
  | Metrics.Gauge_value { last; max } ->
      Alcotest.(check (float 0.0)) "last writer by timestamp" 30.0 last;
      Alcotest.(check (float 0.0)) "max of maxima" 30.0 max
  | _ -> Alcotest.fail "hammer.gauge is not a gauge"

let gauge_merge_semantics () =
  let m =
    on_four_domains (fun m k ->
        (* Older timestamp carries the larger value: "last" must follow the
           timestamp, not program order across domains. *)
        Metrics.Gauge.set (Metrics.gauge m "g.ts") ~ts:(float_of_int (10 - k))
          (float_of_int (100 * k));
        (* Equal timestamps: the tie breaks towards the larger value. *)
        Metrics.Gauge.set (Metrics.gauge m "g.tie") ~ts:1.0 (float_of_int k);
        (* Unstamped sets all carry ts = -inf; max still merges. *)
        Metrics.Gauge.set (Metrics.gauge m "g.unstamped") (float_of_int (k * k)))
  in
  (match find_value m "g.ts" with
  | Metrics.Gauge_value { last; max } ->
      Alcotest.(check (float 0.0)) "greatest ts wins (k=0)" 0.0 last;
      Alcotest.(check (float 0.0)) "max over shards" 300.0 max
  | _ -> Alcotest.fail "g.ts is not a gauge");
  (match find_value m "g.tie" with
  | Metrics.Gauge_value { last; _ } ->
      Alcotest.(check (float 0.0)) "tie breaks to larger value" 3.0 last
  | _ -> Alcotest.fail "g.tie is not a gauge");
  match find_value m "g.unstamped" with
  | Metrics.Gauge_value { last; max } ->
      Alcotest.(check (float 0.0)) "all-tied merge is the max" 9.0 last;
      Alcotest.(check (float 0.0)) "max" 9.0 max
  | _ -> Alcotest.fail "g.unstamped is not a gauge"

let histogram_merge_bounds_mismatch_rejected () =
  let m =
    on_four_domains (fun m k ->
        (* Same name, different bucket bases in different shards: legal to
           register (shards are independent), illegal to merge. *)
        let base = if k mod 2 = 0 then 2.0 else 10.0 in
        Metrics.Histogram.observe (Metrics.histogram m ~base ~lowest:1.0 ~count:4 "h.clash") 5.0)
  in
  Alcotest.check_raises "merge rejects differing bounds"
    (Invalid_argument "Metrics: histogram \"h.clash\" bucket bounds differ across shards")
    (fun () -> ignore (Metrics.snapshot m))

let kind_clash_across_domains_rejected () =
  let m =
    on_four_domains (fun m k ->
        if k = 0 then Metrics.Counter.incr (Metrics.counter m "x")
        else if k = 1 then Metrics.Gauge.set (Metrics.gauge m "x") 1.0)
  in
  Alcotest.check_raises "merge rejects kind clash"
    (Invalid_argument "Metrics: \"x\" registered as a counter in one domain and a gauge in another")
    (fun () -> ignore (Metrics.snapshot m))

let histogram_merge_preserves_overflow () =
  (* Bounds: 1, 2, 4, 8 (+ overflow).  Two domains fill disjoint parts of
     the range including the overflow bucket; the merged histogram must
     keep every bucket count, the total count and the exact sum. *)
  let m =
    on_four_domains (fun m k ->
        let h = Metrics.histogram m ~base:2.0 ~lowest:1.0 ~count:4 "h.over" in
        if k = 0 then List.iter (Metrics.Histogram.observe h) [ 1.0; 3.0; 100.0 ]
        else if k = 1 then List.iter (Metrics.Histogram.observe h) [ 2.0; 1000.0; 9.0 ])
  in
  match find_value m "h.over" with
  | Metrics.Histogram_value { count; sum; buckets } ->
      check_int "count adds" 6 count;
      Alcotest.(check (float 0.0)) "sum adds exactly" 1115.0 sum;
      (match buckets with
      | [ (b1, n1); (_, n2); (_, n3); (_, n4); (binf, ninf) ] ->
          Alcotest.(check (float 0.0)) "first bound" 1.0 b1;
          check "overflow bound is +inf" true (binf = infinity);
          Alcotest.(check (list int)) "bucket-wise totals" [ 1; 1; 1; 0 ] [ n1; n2; n3; n4 ];
          check_int "overflow preserved" 3 ninf
      | l -> Alcotest.failf "expected 5 buckets, got %d" (List.length l))
  | _ -> Alcotest.fail "h.over is not a histogram"

let merge_into_accumulates () =
  let src = Metrics.create () in
  Metrics.Counter.add (Metrics.counter src "c") 5;
  let h = Metrics.histogram src ~base:2.0 ~lowest:1.0 ~count:3 "h" in
  List.iter (Metrics.Histogram.observe h) [ 1.0; 50.0 ];
  Metrics.Gauge.set (Metrics.gauge src "g") ~ts:7.0 3.0;
  let into = Metrics.create () in
  (* An older stamped value in [into] must lose to the newer one in [src]. *)
  Metrics.Gauge.set (Metrics.gauge into "g") ~ts:1.0 42.0;
  Metrics.merge_into ~into src;
  (* The histogram was created in [into] with src's exact bounds. *)
  (match find_value into "h" with
  | Metrics.Histogram_value { count; sum; buckets } ->
      check_int "count copied" 2 count;
      Alcotest.(check (float 0.0)) "sum copied" 51.0 sum;
      check_int "buckets copied" 4 (List.length buckets)
  | _ -> Alcotest.fail "h is not a histogram");
  (match find_value into "g" with
  | Metrics.Gauge_value { last; max } ->
      Alcotest.(check (float 0.0)) "newer src timestamp wins" 3.0 last;
      Alcotest.(check (float 0.0)) "max across registries" 42.0 max
  | _ -> Alcotest.fail "g is not a gauge");
  (* Accumulation, not union: a second merge double-counts. *)
  Metrics.merge_into ~into src;
  match find_value into "c" with
  | Metrics.Counter_value n -> check_int "second merge adds again" 10 n
  | _ -> Alcotest.fail "c is not a counter"

(* -- Sketches ------------------------------------------------------------ *)

module Sketch = Smrp_obs.Sketch

let exact_quantile values q =
  (* Rank-based reference on the raw data: value at rank
     [max 1 (ceil (q * n))], matching the sketch's rank rule. *)
  let sorted = List.sort compare values in
  let n = List.length sorted in
  let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
  List.nth sorted (rank - 1)

let sketch_quantile_error_bounds () =
  (* 1..1000: every estimate must sit within the advertised relative error
     of the rank-true quantile, and the hard bucket bounds must bracket
     it. *)
  let s = Sketch.create () in
  let values = List.init 1000 (fun i -> float_of_int (i + 1)) in
  List.iter (Sketch.observe s) values;
  check_int "count" 1000 (Sketch.count s);
  Alcotest.(check (float 1e-6)) "sum exact on integers" 500500.0 (Sketch.sum s);
  let err = Sketch.rel_error s in
  check "error bound is ~5.6%" true (err > 0.05 && err < 0.06);
  List.iter
    (fun q ->
      let truth = exact_quantile values q in
      let est = Sketch.quantile s q in
      check
        (Printf.sprintf "q=%g estimate %g within %.1f%% of %g" q est (100.0 *. err) truth)
        true
        (Float.abs (est -. truth) <= (err *. truth) +. 1e-9);
      let lo, hi = Sketch.quantile_bounds s q in
      check (Printf.sprintf "q=%g bounds bracket truth" q) true (lo <= truth && truth <= hi))
    [ 0.0; 0.5; 0.9; 0.99; 0.999; 1.0 ]

let sketch_estimates_clamped_to_extrema () =
  let s = Sketch.create () in
  Sketch.observe s 3.0;
  List.iter
    (fun q -> Alcotest.(check (float 0.0)) "single value is every quantile" 3.0 (Sketch.quantile s q))
    [ 0.0; 0.5; 1.0 ];
  (* Values below [lowest] and beyond the last bound still clamp to the
     observed extrema. *)
  let tiny = Sketch.create ~base:2.0 ~lowest:1.0 ~count:3 () in
  Sketch.observe tiny 0.25;
  Sketch.observe tiny 1e6;
  Alcotest.(check (float 0.0)) "p0 clamps to min" 0.25 (Sketch.quantile tiny 0.0);
  Alcotest.(check (float 0.0)) "p100 clamps to max (overflow bucket)" 1e6 (Sketch.quantile tiny 1.0)

let sketch_guards () =
  let s = Sketch.create () in
  Alcotest.check_raises "empty quantile" (Invalid_argument "Sketch.quantile: empty sketch")
    (fun () -> ignore (Sketch.quantile s 0.5));
  Sketch.observe s 1.0;
  Alcotest.check_raises "q out of range" (Invalid_argument "Sketch.quantile: q outside [0, 1]")
    (fun () -> ignore (Sketch.quantile s 1.5));
  Alcotest.check_raises "non-finite observation"
    (Invalid_argument "Sketch.observe: non-finite value") (fun () -> Sketch.observe s nan);
  Alcotest.check_raises "layout mismatch"
    (Invalid_argument "Sketch.merge_into: sketch layouts differ (base/lowest/bucket count)")
    (fun () -> Sketch.merge_into ~into:s (Sketch.create ~base:2.0 ()))

let sketch_merge_matches_sequential () =
  (* Split one observation stream across two sketches; the merge must equal
     the sketch that saw everything (plain-data summaries compare with =). *)
  let all = List.init 500 (fun i -> Float.of_int (1 + (i * i mod 97))) in
  let whole = Sketch.create () in
  List.iter (Sketch.observe whole) all;
  let a = Sketch.create () and b = Sketch.create () in
  List.iteri (fun i v -> Sketch.observe (if i mod 2 = 0 then a else b) v) all;
  Sketch.merge_into ~into:a b;
  check "merged summary equals sequential" true (Sketch.summarize a = Sketch.summarize whole);
  Alcotest.(check (float 0.0)) "merged p99 equals sequential" (Sketch.quantile whole 0.99)
    (Sketch.quantile a 0.99)

let sketch_summary_roundtrips_quantiles () =
  let s = Sketch.create () in
  List.iter (Sketch.observe s) [ 1.0; 2.0; 2.0; 8.0; 40.0 ];
  let sm = Sketch.summarize s in
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0)) "summary quantile = live quantile" (Sketch.quantile s q)
        (Sketch.summary_quantile sm q))
    [ 0.0; 0.5; 0.9; 1.0 ];
  Alcotest.(check (float 0.0)) "summary error bound" (Sketch.rel_error s)
    (Sketch.summary_rel_error sm)

(* -- Series -------------------------------------------------------------- *)

module Series = Smrp_obs.Series

let series_bucketing_kinds () =
  let sum = Series.create ~interval:2.0 ~capacity:8 () in
  List.iter (fun (ts, v) -> Series.observe sum ~ts v) [ (0.0, 1.0); (1.9, 2.0); (4.0, 5.0) ];
  (* ts 0 and 1.9 share bucket 0; 4.0 opens bucket 2. *)
  check "sum adds within bucket" true
    (Series.points sum = [ (0.0, 3.0); (4.0, 5.0) ]);
  let last = Series.create ~kind:Series.Last ~interval:2.0 ~capacity:8 () in
  List.iter (fun (ts, v) -> Series.observe last ~ts v) [ (0.0, 10.0); (1.0, 7.0); (4.0, 5.0) ];
  check "last overwrites within bucket" true
    (Series.points last = [ (0.0, 7.0); (4.0, 5.0) ]);
  check_int "samples counted" 3 (Series.samples last)

let series_ring_eviction () =
  let s = Series.create ~interval:1.0 ~capacity:4 () in
  for i = 0 to 9 do
    Series.observe s ~ts:(float_of_int i) 1.0
  done;
  (* Window is (hi - capacity, hi] = buckets 6..9. *)
  check "window keeps last capacity buckets" true
    (Series.points s = [ (6.0, 1.0); (7.0, 1.0); (8.0, 1.0); (9.0, 1.0) ]);
  check_int "no drops while moving forward" 0 (Series.dropped s);
  Series.observe s ~ts:2.0 1.0;
  check_int "stale observation dropped" 1 (Series.dropped s);
  check "stale observation did not resurface" true (List.length (Series.points s) = 4);
  Alcotest.check_raises "negative ts"
    (Invalid_argument "Series.observe: ts must be finite and non-negative") (fun () ->
      Series.observe s ~ts:(-1.0) 0.0)

let series_merge_semantics () =
  (* Sum: bucket-wise addition. *)
  let a = Series.create ~capacity:16 () and b = Series.create ~capacity:16 () in
  Series.observe a ~ts:1.0 2.0;
  Series.observe a ~ts:5.0 1.0;
  Series.observe b ~ts:1.5 3.0;
  Series.observe b ~ts:9.0 4.0;
  Series.merge_into ~into:a b;
  check "sum merge adds per bucket" true
    (Series.points a = [ (1.0, 5.0); (5.0, 1.0); (9.0, 4.0) ]);
  (* Last: per bucket the greater observation ts supplies the value, ties
     break towards the larger value — the gauge rule. *)
  let x = Series.create ~kind:Series.Last ~capacity:16 ()
  and y = Series.create ~kind:Series.Last ~capacity:16 () in
  Series.observe x ~ts:1.2 10.0;
  Series.observe y ~ts:1.7 20.0 (* newer wins bucket 1 *);
  Series.observe x ~ts:2.5 9.0;
  Series.observe y ~ts:2.5 3.0 (* tie: larger value wins bucket 2 *);
  Series.merge_into ~into:x y;
  check "last merge follows gauge rule" true (Series.points x = [ (1.0, 20.0); (2.0, 9.0) ]);
  Alcotest.check_raises "layout mismatch"
    (Invalid_argument "Series.merge_into: series layouts differ (kind/interval/capacity)")
    (fun () -> Series.merge_into ~into:a (Series.create ~capacity:8 ()))

(* -- Sketches and series across domains ---------------------------------- *)

let sharded_sketch_series_equal_sequential () =
  (* The tentpole identity: a 4-domain fan-out recording into registry
     sketches and series merges to exactly the snapshot of a sequential run
     making the same observations.  Snapshot values are plain data, so the
     whole comparison is structural equality. *)
  let body m k =
    let q = Metrics.sketch m "hammer.q" in
    let drops = Metrics.series m "hammer.drops" in
    for i = 1 to 5_000 do
      Sketch.observe q (float_of_int (1 + ((i * (k + 1)) mod 113)));
      Series.observe drops ~ts:(float_of_int ((i + k) mod 400)) 1.0
    done
  in
  let par = on_four_domains body in
  let seq = Metrics.create () in
  for k = 0 to 3 do
    body seq k
  done;
  check_int "four shards" 4 (Metrics.shard_count par);
  check_int "one shard sequentially" 1 (Metrics.shard_count seq);
  check "merged snapshot equals sequential" true (Metrics.snapshot par = Metrics.snapshot seq);
  match find_value par "hammer.q" with
  | Metrics.Sketch_value s ->
      check_int "sketch count" 20_000 s.Sketch.s_count;
      check "sum exact on integer observations" true
        (Float.is_integer s.Sketch.s_sum && s.Sketch.s_sum > 0.0)
  | _ -> Alcotest.fail "hammer.q is not a sketch"

let sketch_layout_mismatch_across_shards_rejected () =
  let m =
    on_four_domains (fun m k ->
        let base = if k mod 2 = 0 then 1.25 else 2.0 in
        Sketch.observe (Metrics.sketch m ~base "q.clash") 5.0)
  in
  Alcotest.check_raises "merge rejects differing sketch layouts"
    (Invalid_argument "Metrics: sketch \"q.clash\" layouts differ across shards") (fun () ->
      ignore (Metrics.snapshot m))

let series_layout_mismatch_across_shards_rejected () =
  let m =
    on_four_domains (fun m k ->
        let interval = if k mod 2 = 0 then 1.0 else 2.0 in
        Series.observe (Metrics.series m ~interval "s.clash") ~ts:1.0 1.0)
  in
  Alcotest.check_raises "merge rejects differing series layouts"
    (Invalid_argument "Metrics: series \"s.clash\" layouts differ across shards") (fun () ->
      ignore (Metrics.snapshot m))

(* -- Trace -------------------------------------------------------------- *)

let span_nesting_in_ring () =
  let sink = Trace.ring ~capacity:100 in
  let t = Trace.create sink in
  check "enabled" true (Trace.enabled t);
  check "null disabled" false (Trace.enabled Trace.null);
  Trace.begin_span t ~ts:1.0 ~tid:3 "outer";
  Trace.begin_span t ~ts:2.0 ~tid:3 "inner";
  Trace.instant t ~ts:2.5 ~tid:3 "tick";
  Trace.end_span t ~ts:3.0 ~tid:3 "inner";
  Trace.end_span t ~ts:4.0 ~tid:3 "outer";
  match Trace.ring_contents sink with
  | [ a; b; c; d; e ] ->
      check "outer opens" true (a.Trace.ph = Trace.Begin && a.Trace.name = "outer");
      check "inner nested" true (b.Trace.ph = Trace.Begin && b.Trace.name = "inner");
      check "instant inside" true (c.Trace.ph = Trace.Instant && c.Trace.ts = 2.5);
      check "inner closes first" true (d.Trace.ph = Trace.End && d.Trace.name = "inner");
      check "outer closes last" true (e.Trace.ph = Trace.End && e.Trace.name = "outer")
  | evs -> Alcotest.failf "expected 5 events, got %d" (List.length evs)

let ring_keeps_last_events () =
  let sink = Trace.ring ~capacity:3 in
  let t = Trace.create sink in
  for i = 1 to 5 do
    Trace.instant t ~ts:(float_of_int i) "e"
  done;
  match Trace.ring_contents sink with
  | [ a; b; c ] ->
      Alcotest.(check (list (float 0.0))) "last three" [ 3.0; 4.0; 5.0 ] [ a.Trace.ts; b.Trace.ts; c.Trace.ts ]
  | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs)

let json_shape () =
  let e =
    {
      Trace.ts = 1.5;
      name = "fra\"me";
      cat = "net";
      ph = Trace.Complete 0.25;
      pid = 2;
      tid = 7;
      args = [ ("dst", Trace.Int 3) ];
    }
  in
  let j = Trace.to_json e in
  List.iter
    (fun affix -> check ("json contains " ^ affix) true (contains ~affix j))
    [
      "\"ph\":\"X\"";
      "\"ts\":1500000";
      "\"dur\":250000";
      "\"name\":\"fra\\\"me\"";
      "\"cat\":\"net\"";
      "\"pid\":2";
      "\"tid\":7";
      "\"args\":{\"dst\":3}";
    ]

let stitched_multi_domain_monotone_per_tid () =
  (* Four domains emit into one sharded tracer with deliberately
     overlapping timestamps; the stitched stream must carry domain ids as
     tids, be globally ts-ordered, and be monotone within every tid. *)
  let sink = Trace.sharded_ring ~capacity:1000 in
  let t = Trace.create sink in
  let emit k =
    for i = 0 to 9 do
      Trace.instant t ~ts:(float_of_int i) ~args:[ ("k", Trace.Int k) ]
        (Printf.sprintf "d%d.e%d" k i)
    done
  in
  let domains = Array.init 4 (fun k -> Domain.spawn (fun () -> emit k)) in
  Array.iter Domain.join domains;
  let events = Trace.stitched_contents sink in
  check_int "all events stitched" 40 (List.length events);
  let tids = List.sort_uniq compare (List.map (fun e -> e.Trace.tid) events) in
  check_int "four distinct tids" 4 (List.length tids);
  let rec globally_sorted = function
    | a :: (b :: _ as rest) -> a.Trace.ts <= b.Trace.ts && globally_sorted rest
    | _ -> true
  in
  check "globally ts-ordered" true (globally_sorted events);
  List.iter
    (fun tid ->
      let mine = List.filter (fun e -> e.Trace.tid = tid) events in
      check_int "per-tid events" 10 (List.length mine);
      let rec monotone = function
        | a :: (b :: _ as rest) -> a.Trace.ts <= b.Trace.ts && monotone rest
        | _ -> true
      in
      check "monotone per tid" true (monotone mine);
      (* Per-ring emission order survives the stitch for equal timestamps. *)
      List.iteri
        (fun i e ->
          check "emission order kept" true (e.Trace.name = Printf.sprintf "d%d.e%d"
            (match e.Trace.args with [ (_, Trace.Int k) ] -> k | _ -> -1) i))
        mine)
    tids;
  (* Per-domain rings are individually bounded. *)
  let sink2 = Trace.sharded_ring ~capacity:3 in
  let t2 = Trace.create sink2 in
  let d = Domain.spawn (fun () -> for i = 1 to 5 do Trace.instant t2 ~ts:(float_of_int i) "e" done) in
  Domain.join d;
  Alcotest.(check (list (float 0.0))) "ring bound per domain" [ 3.0; 4.0; 5.0 ]
    (List.map (fun e -> e.Trace.ts) (Trace.stitched_contents sink2))

(* One fully instrumented seeded simulation; used by the determinism and
   smoke tests below. *)
let instrumented_run sink =
  let obs = Obs.create ?sink ()  in
  let engine = Engine.create ~obs () in
  let g = Fixtures.ring 5 in
  let p = Protocol.create engine g ~source:0 in
  Protocol.start p;
  ignore (Engine.schedule engine ~delay:0.5 (fun () -> Protocol.join p 2));
  ignore (Engine.schedule engine ~delay:1.5 (fun () -> Protocol.join p 3));
  Engine.run ~until:20.0 engine;
  Protocol.inject_link_failure p (edge g 0 1);
  Engine.run ~until:60.0 engine;
  (obs, p)

let sinks_deterministic_across_runs () =
  (* Two identical seeded runs must produce byte-identical JSONL and equal
     ring contents — traces are keyed on the simulation clock, not wall
     time. *)
  let jsonl_run () =
    let buf = Buffer.create 4096 in
    let sink = Trace.jsonl (fun line -> Buffer.add_string buf line; Buffer.add_char buf '\n') in
    let obs, _ = instrumented_run (Some sink) in
    (Buffer.contents buf, Metrics.render (Obs.metrics obs))
  in
  let j1, m1 = jsonl_run () in
  let j2, m2 = jsonl_run () in
  check "jsonl non-trivial" true (String.length j1 > 1000);
  check "jsonl identical" true (String.equal j1 j2);
  check "metrics render identical" true (String.equal m1 m2);
  let ring_run () =
    let sink = Trace.ring ~capacity:100_000 in
    ignore (instrumented_run (Some sink));
    Trace.ring_contents sink
  in
  check "ring contents identical" true (ring_run () = ring_run ())

(* -- Timeline ----------------------------------------------------------- *)

let timeline_recorder_guards () =
  (* The milestone tracker now lives in Causal; Timeline is a projection of
     its episodes, so the guard semantics are pinned through both modules. *)
  let r = Causal.create () in
  (* Milestones before the failure are ignored. *)
  Causal.note_detected r ~member:1 ~ts:0.5;
  check "no episode before failure" true (Causal.episodes r = []);
  Causal.note_failure r ~ts:1.0;
  Causal.note_detected r ~member:1 ~ts:1.5;
  Causal.note_detected r ~member:1 ~ts:9.9 (* first detection wins *);
  Causal.note_signalled r ~member:1 ~ts:1.6;
  Causal.note_installed r ~member:1 ~ts:1.8;
  Causal.note_installed r ~member:1 ~ts:1.9 (* refresh re-confirmation: ignored *);
  Causal.note_first_data r ~member:1 ~ts:2.0;
  Causal.note_signalled r ~member:1 ~ts:5.0 (* closed: ignored *);
  match Causal.episodes r with
  | [ e ] ->
      check_int "member" 1 e.Timeline.member;
      check_int "attempts" 1 e.Timeline.attempts;
      let d = Timeline.phase_durations e in
      let get p = Option.get (List.assoc p d) in
      Alcotest.(check (float 1e-9)) "detection" 0.5 (get Timeline.Detection);
      Alcotest.(check (float 1e-9)) "signalling" 0.1 (get Timeline.Signalling);
      Alcotest.(check (float 1e-9)) "installation" 0.2 (get Timeline.Installation);
      Alcotest.(check (float 1e-9)) "first data" 0.2 (get Timeline.First_data);
      Alcotest.(check (float 1e-9)) "total" 1.0 (Option.get (Timeline.total e));
      check "render has a row" true (contains ~affix:"1" (Timeline.render [ e ]))
  | eps -> Alcotest.failf "expected one episode, got %d" (List.length eps)

let protocol_emits_well_formed_timeline () =
  (* Smoke test: a recovery run produces a complete, ordered episode whose
     milestones bracket the member's reported detection/restoration. *)
  let sink = Trace.ring ~capacity:100_000 in
  let obs, p = instrumented_run (Some sink) in
  let eps = Protocol.timeline p in
  check "episodes recorded" true (eps <> []);
  List.iter
    (fun (e : Timeline.episode) ->
      List.iter
        (fun (p, d) ->
          match d with
          | Some d -> check (Timeline.phase_name p ^ " non-negative") true (d >= 0.0)
          | None -> Alcotest.failf "missing %s milestone" (Timeline.phase_name p))
        (Timeline.phase_durations e);
      let report = List.find (fun r -> r.Protocol.member = e.Timeline.member) (Protocol.reports p) in
      (match (report.Protocol.restored, Timeline.total e) with
      | Some restored, Some total -> Alcotest.(check (float 1e-9)) "total = reported restoration" restored total
      | _ -> Alcotest.fail "member not restored"))
    eps;
  (* The phase table renders one row per episode. *)
  let table = Protocol.phase_table p in
  check "table has header" true (contains ~affix:"detect(s)" table);
  (* The trace carries the recovery lifecycle for each disrupted member. *)
  let events = Trace.ring_contents sink in
  let count ?ph name =
    List.length
      (List.filter
         (fun e -> e.Trace.name = name && match ph with Some p -> e.Trace.ph = p | None -> true)
         events)
  in
  check_int "failure instant" 1 (count "failure");
  check_int "one recovery span open per episode" (List.length eps) (count ~ph:Trace.Begin "recovery");
  check_int "every recovery span closes" (List.length eps) (count ~ph:Trace.End "recovery");
  check "detected instants" true (count "detected" >= List.length eps);
  check "first_data instants" true (count "first_data" >= List.length eps);
  (* Metrics: engine, net and recovery-phase instruments are live. *)
  let m = Metrics.render (Obs.metrics obs) in
  List.iter
    (fun affix -> check ("metrics contain " ^ affix) true (contains ~affix m))
    [ "engine.events_fired"; "net.frames_sent"; "recovery.phase.detection"; "recovery.total" ]

let noop_sink_costs_nothing_extra () =
  (* With no obs context at all, the same run still records timelines and
     reports; the instrumentation has no visible side effects. *)
  let _, p = instrumented_run None in
  check "timeline recorded without obs" true (Protocol.timeline p <> []);
  check "members restored" true
    (List.for_all
       (fun (r : Protocol.member_report) -> r.Protocol.restored <> None)
       (List.filter (fun (r : Protocol.member_report) -> r.Protocol.detected <> None) (Protocol.reports p)))

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter and gauge" `Quick counter_and_gauge;
          Alcotest.test_case "histogram bucketing" `Quick histogram_bucketing;
          Alcotest.test_case "snapshot sorted" `Quick snapshot_sorted_and_rendered;
        ] );
      ( "sharding",
        [
          Alcotest.test_case "4-domain hammer exact totals" `Quick sharded_hammer_exact_totals;
          Alcotest.test_case "gauge merge semantics" `Quick gauge_merge_semantics;
          Alcotest.test_case "histogram bounds mismatch rejected" `Quick
            histogram_merge_bounds_mismatch_rejected;
          Alcotest.test_case "kind clash across domains rejected" `Quick
            kind_clash_across_domains_rejected;
          Alcotest.test_case "histogram merge preserves overflow" `Quick
            histogram_merge_preserves_overflow;
          Alcotest.test_case "merge_into accumulates" `Quick merge_into_accumulates;
        ] );
      ( "sketch",
        [
          Alcotest.test_case "quantile error bounds" `Quick sketch_quantile_error_bounds;
          Alcotest.test_case "estimates clamp to extrema" `Quick sketch_estimates_clamped_to_extrema;
          Alcotest.test_case "guards" `Quick sketch_guards;
          Alcotest.test_case "merge matches sequential" `Quick sketch_merge_matches_sequential;
          Alcotest.test_case "summary round-trips quantiles" `Quick
            sketch_summary_roundtrips_quantiles;
        ] );
      ( "series",
        [
          Alcotest.test_case "bucketing and kinds" `Quick series_bucketing_kinds;
          Alcotest.test_case "ring eviction" `Quick series_ring_eviction;
          Alcotest.test_case "merge semantics" `Quick series_merge_semantics;
        ] );
      ( "sharded sketch/series",
        [
          Alcotest.test_case "4-domain hammer equals sequential" `Quick
            sharded_sketch_series_equal_sequential;
          Alcotest.test_case "sketch layout mismatch rejected" `Quick
            sketch_layout_mismatch_across_shards_rejected;
          Alcotest.test_case "series layout mismatch rejected" `Quick
            series_layout_mismatch_across_shards_rejected;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick span_nesting_in_ring;
          Alcotest.test_case "ring keeps last" `Quick ring_keeps_last_events;
          Alcotest.test_case "json shape" `Quick json_shape;
          Alcotest.test_case "sinks deterministic" `Quick sinks_deterministic_across_runs;
          Alcotest.test_case "multi-domain stitching monotone per tid" `Quick
            stitched_multi_domain_monotone_per_tid;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "recorder guards" `Quick timeline_recorder_guards;
          Alcotest.test_case "protocol timeline well-formed" `Quick protocol_emits_well_formed_timeline;
          Alcotest.test_case "no-op path" `Quick noop_sink_costs_nothing_extra;
        ] );
    ]
