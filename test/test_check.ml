(* The Smrp_check fuzzing harness: oracles, shrinking, replay files and the
   fault-injection self-tests that prove the oracles catch what they claim. *)

module Graph = Smrp_graph.Graph
module Rng = Smrp_rng.Rng
module Fixtures = Smrp_topology.Fixtures
module Tree = Smrp_core.Tree
module Smrp = Smrp_core.Smrp
module Case = Smrp_check.Case
module Gen = Smrp_check.Gen
module Oracle = Smrp_check.Oracle
module Exec = Smrp_check.Exec
module Shrink = Smrp_check.Shrink
module Fuzz = Smrp_check.Fuzz
module Json = Bench_support.Bench_json

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* -- Pinned fixture ----------------------------------------------------- *)

(* The minimized repro of the skip-shr fault-injection campaign
   (`smrp fuzz --seed 42 --inject skip-shr`): one join over a 3-node line.
   Pinned so tier-1 guards the catch-and-shrink behaviour forever: the case
   must replay green against the real stack and must trip the bookkeeping
   oracles the moment a join drops one N_R update. *)
let pinned_repro =
  {
    Case.n = 3;
    edges = [ (1, 2, 0.566); (2, 0, 0.5) ];
    source = 0;
    protocol = Case.Smrp;
    d_thresh = 0.1;
    events = [ Case.Join 1 ];
  }

let pinned_repro_green () =
  match Exec.run pinned_repro with
  | Exec.Pass s -> check_int "one event applied" 1 s.Exec.applied
  | Exec.Fail v -> Alcotest.failf "pinned repro failed: %a" Exec.pp_violation v

let pinned_repro_catches_injected_bug () =
  match Exec.run ~bug:Exec.Skip_n_r_update pinned_repro with
  | Exec.Pass _ -> Alcotest.fail "oracles missed the injected N_R corruption"
  | Exec.Fail v ->
      check_int "caught at the join" 0 v.Exec.index;
      check "structural or bookkeeping oracle" true
        (v.Exec.oracle = "structure" || v.Exec.oracle = "bookkeeping")

(* -- Campaigns ----------------------------------------------------------- *)

let smoke_campaign () =
  let report = Fuzz.run { Fuzz.default with Fuzz.seed = 42; runs = 120 } in
  check "no violations on the real stack" true (report.Fuzz.failures = []);
  check "events were exercised" true (report.Fuzz.applied > 500);
  check "failures were exercised" true (report.Fuzz.repairs > 0 || report.Fuzz.lost > 0)

let injected_bug_caught_and_shrunk () =
  let report =
    Fuzz.run { Fuzz.default with Fuzz.seed = 42; runs = 500; bug = Exec.Skip_n_r_update }
  in
  match report.Fuzz.failures with
  | [] -> Alcotest.fail "campaign missed the injected bug"
  | f :: _ ->
      check "shrunk to a handful of events" true (Case.event_count f.Fuzz.shrunk <= 10);
      check "shrunk below the original" true
        (Case.event_count f.Fuzz.shrunk <= Case.event_count f.Fuzz.case);
      (* The shrunk case still fails with the bug and passes without it. *)
      check "shrunk case reproduces" true (Exec.fails ~bug:Exec.Skip_n_r_update f.Fuzz.shrunk);
      check "shrunk case is clean without the bug" false (Exec.fails f.Fuzz.shrunk)

let drop_member_caught_by_reshape_oracle () =
  let report =
    Fuzz.run { Fuzz.default with Fuzz.seed = 42; runs = 500; bug = Exec.Drop_member_on_reshape }
  in
  match report.Fuzz.failures with
  | [] -> Alcotest.fail "campaign missed the injected reshape bug"
  | f :: _ ->
      Alcotest.(check string)
        "membership oracle names the fault" "reshape-membership" f.Fuzz.violation.Exec.oracle;
      check "shrunk to a handful of events" true (Case.event_count f.Fuzz.shrunk <= 10)

(* -- Replay files -------------------------------------------------------- *)

let json_roundtrip () =
  let rng = Rng.create 9 in
  for _ = 1 to 20 do
    let case = Gen.case (Rng.split rng) in
    match Case.of_json (Json.parse (Json.to_string (Case.to_json case))) with
    | Ok case' -> check "roundtrip identity" true (case = case')
    | Error msg -> Alcotest.failf "roundtrip failed: %s" msg
  done

let json_rejects_bad_input () =
  let reject what j =
    match Case.of_json j with
    | Ok _ -> Alcotest.failf "%s was accepted" what
    | Error _ -> ()
  in
  reject "wrong format tag" (Json.Obj [ ("format", Json.Str "nope") ]);
  let base = Case.to_json pinned_repro in
  let patch path v =
    let rec go path j =
      match (path, j) with
      | [ k ], Json.Obj ms -> Json.Obj (List.map (fun (k', v') -> if k' = k then (k', v) else (k', v')) ms)
      | k :: rest, Json.Obj ms ->
          Json.Obj (List.map (fun (k', v') -> if k' = k then (k', go rest v') else (k', v')) ms)
      | _ -> j
    in
    go path base
  in
  reject "out-of-range source" (patch [ "topology"; "source" ] (Json.Num 99.0));
  reject "self-loop edge"
    (patch [ "topology"; "edges" ]
       (Json.List [ Json.List [ Json.Num 1.0; Json.Num 1.0; Json.Num 1.0 ] ]));
  reject "out-of-range fail link"
    (patch [ "events" ]
       (Json.List
          [ Json.Obj [ ("op", Json.Str "fail"); ("links", Json.List [ Json.Num 7.0 ]);
                       ("nodes", Json.List []) ] ]));
  reject "negative delay"
    (patch [ "topology"; "edges" ]
       (Json.List [ Json.List [ Json.Num 0.0; Json.Num 1.0; Json.Num (-1.0) ] ]))

let save_load_roundtrip () =
  let file = Filename.temp_file "smrp-fuzz" ".json" in
  Case.save file pinned_repro;
  (match Case.load file with
  | Ok case -> check "load equals save" true (case = pinned_repro)
  | Error msg -> Alcotest.failf "load failed: %s" msg);
  Sys.remove file

(* -- Determinism --------------------------------------------------------- *)

let generation_deterministic () =
  let draw () = Gen.case (Rng.create 77) in
  check "same seed, same case" true (draw () = draw ())

let execution_deterministic () =
  let rng = Rng.create 5 in
  for _ = 1 to 10 do
    let case = Gen.case (Rng.split rng) in
    check "same case, same outcome" true (Exec.run case = Exec.run case)
  done

(* -- Oracle internals ---------------------------------------------------- *)

let recomputation_matches_incremental () =
  let f = Fixtures.fig4 () in
  let t = Tree.create f.Fixtures.graph ~source:f.Fixtures.s in
  Smrp.join ~d_thresh:0.3 t f.Fixtures.e;
  Smrp.join ~d_thresh:0.3 t f.Fixtures.g;
  Smrp.join ~d_thresh:0.3 t f.Fixtures.f;
  let n_r = Oracle.recompute_n_r t in
  let shr = Oracle.recompute_shr t in
  List.iter
    (fun v ->
      check_int "N_R agrees" (Tree.subtree_members t v) n_r.(v);
      check_int "SHR agrees" (Tree.shr t v) shr.(v))
    (Tree.on_tree_nodes t)

let naive_candidates_match_production () =
  (* The naive reference enumeration must agree with Smrp.candidates on the
     paper's Figure 4 walkthrough — same merges, same delays, same SHR. *)
  let f = Fixtures.fig4 () in
  let t = Tree.create f.Fixtures.graph ~source:f.Fixtures.s in
  Smrp.join ~d_thresh:0.3 t f.Fixtures.e;
  Smrp.join ~d_thresh:0.3 t f.Fixtures.g;
  let prod = Smrp.candidates t ~joiner:f.Fixtures.f in
  let naive = Oracle.naive_candidates t ~joiner:f.Fixtures.f in
  check_int "same candidate count" (List.length prod) (List.length naive);
  List.iter2
    (fun (p : Smrp.candidate) (o : Oracle.naive_candidate) ->
      check_int "same merge" p.Smrp.merge o.Oracle.merge;
      check_int "same SHR" p.Smrp.shr o.Oracle.shr;
      Alcotest.(check (float 1e-9)) "same total delay" p.Smrp.total_delay o.Oracle.total_delay)
    prod naive

let bookkeeping_oracle_detects_corruption () =
  let f = Fixtures.fig4 () in
  let t = Tree.create f.Fixtures.graph ~source:f.Fixtures.s in
  Smrp.join ~d_thresh:0.3 t f.Fixtures.e;
  check "clean tree passes" true (Oracle.bookkeeping t = None);
  Tree.unsafe_tweak_subtree_members t f.Fixtures.e (-1);
  check "corrupted N_R detected" true (Oracle.bookkeeping t <> None)

(* -- Shrinker ------------------------------------------------------------ *)

let shrinker_drops_irrelevant_events () =
  (* Predicate: the case fails whenever node 1 ever joins (a stand-in for a
     bug triggered by one event).  The shrinker must strip everything else. *)
  let case =
    {
      Case.n = 6;
      edges = List.init 6 (fun i -> (i, (i + 1) mod 6, 1.0));
      source = 0;
      protocol = Case.Smrp;
      d_thresh = 0.3;
      events =
        [
          Case.Join 2;
          Case.Reshape;
          Case.Join 1;
          Case.Leave 2;
          Case.Fail { links = [ 0 ]; nodes = [] };
          Case.Reshape;
        ];
    }
  in
  let fails c = List.exists (fun e -> e = Case.Join 1) c.Case.events in
  let shrunk = Shrink.shrink ~fails case in
  check "only the triggering event remains" true (shrunk.Case.events = [ Case.Join 1 ]);
  check "unreferenced topology compacted" true (shrunk.Case.n < case.Case.n)

let shrinker_keeps_non_failing_cases () =
  let case = pinned_repro in
  check "non-failing input returned unchanged" true
    (Shrink.shrink ~fails:(fun _ -> false) case = case)

let () =
  Alcotest.run "check"
    [
      ( "pinned_repro",
        [
          Alcotest.test_case "replays green on the real stack" `Quick pinned_repro_green;
          Alcotest.test_case "catches the injected N_R corruption" `Quick
            pinned_repro_catches_injected_bug;
        ] );
      ( "campaigns",
        [
          Alcotest.test_case "smoke campaign holds all invariants" `Quick smoke_campaign;
          Alcotest.test_case "skip-shr injection is caught and shrunk" `Quick
            injected_bug_caught_and_shrunk;
          Alcotest.test_case "drop-member injection names the reshape oracle" `Quick
            drop_member_caught_by_reshape_oracle;
        ] );
      ( "replay_files",
        [
          Alcotest.test_case "json roundtrip" `Quick json_roundtrip;
          Alcotest.test_case "malformed repros rejected" `Quick json_rejects_bad_input;
          Alcotest.test_case "save/load roundtrip" `Quick save_load_roundtrip;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "generation" `Quick generation_deterministic;
          Alcotest.test_case "execution" `Quick execution_deterministic;
        ] );
      ( "oracles",
        [
          Alcotest.test_case "recomputation matches incremental state" `Quick
            recomputation_matches_incremental;
          Alcotest.test_case "naive candidates match production" `Quick
            naive_candidates_match_production;
          Alcotest.test_case "bookkeeping oracle detects corruption" `Quick
            bookkeeping_oracle_detects_corruption;
        ] );
      ( "shrinker",
        [
          Alcotest.test_case "drops irrelevant events and topology" `Quick
            shrinker_drops_irrelevant_events;
          Alcotest.test_case "returns non-failing cases unchanged" `Quick
            shrinker_keeps_non_failing_cases;
        ] );
    ]
