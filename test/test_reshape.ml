(* Tree reshaping (§3.2.3) beyond the Figure 5 walkthrough. *)

module Graph = Smrp_graph.Graph
module Rng = Smrp_rng.Rng
module Waxman = Smrp_topology.Waxman
module Fixtures = Smrp_topology.Fixtures
module Tree = Smrp_core.Tree
module Spf = Smrp_core.Spf
module Smrp = Smrp_core.Smrp
module Reshape = Smrp_core.Reshape

(* Property tests run with a pinned PRNG state so failures are
   reproducible run over run. *)
let qcheck_case t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 424242 |]) t

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let assert_valid t = match Tree.validate t with Ok () -> () | Error e -> Alcotest.fail e

let random_scene seed =
  let rng = Rng.create seed in
  let n = 20 + Rng.int rng 60 in
  let topo = Waxman.generate rng ~n ~alpha:0.2 ~beta:0.2 in
  let k = 2 + Rng.int rng (min 15 (n - 2)) in
  let sample = Smrp_rng.Rng.sample_without_replacement rng (k + 1) n in
  (topo.Waxman.graph, List.hd sample, List.tl sample)

let reshape_noop_when_stable () =
  let f = Fixtures.fig4 () in
  let t = Tree.create f.Fixtures.graph ~source:f.Fixtures.s in
  Smrp.join ~d_thresh:0.3 t f.Fixtures.e;
  Smrp.join ~d_thresh:0.3 t f.Fixtures.g;
  Smrp.join ~d_thresh:0.3 t f.Fixtures.f;
  check "first reshape switches" true (Reshape.try_reshape ~d_thresh:0.3 t f.Fixtures.e);
  check "second reshape is a no-op" false (Reshape.try_reshape ~d_thresh:0.3 t f.Fixtures.e);
  assert_valid t

let reshape_preserves_membership () =
  let g, source, members = random_scene 5 in
  let t = Smrp.build ~d_thresh:0.3 g ~source ~members in
  let before = Tree.members t in
  ignore (Reshape.stabilize ~d_thresh:0.3 t);
  Alcotest.(check (list int)) "members unchanged" before (Tree.members t);
  assert_valid t

let reshape_rejected_for_bad_nodes () =
  let g = Fixtures.line 3 in
  let t = Spf.build g ~source:0 ~members:[ 2 ] in
  Alcotest.check_raises "source" (Invalid_argument "Reshape.try_reshape: cannot reshape the source")
    (fun () -> ignore (Reshape.try_reshape t 0));
  Alcotest.check_raises "off-tree" (Invalid_argument "Reshape.try_reshape: off-tree node")
    (fun () ->
      let g2 = Fixtures.line 4 in
      let t2 = Spf.build g2 ~source:0 ~members:[ 1 ] in
      ignore (Reshape.try_reshape t2 3))

let stabilize_terminates () =
  let g, source, members = random_scene 8 in
  let t = Smrp.build ~d_thresh:0.3 g ~source ~members in
  let stats = Reshape.stabilize ~d_thresh:0.3 ~max_rounds:10 t in
  check "bounded rounds" true (stats.Reshape.rounds <= 10);
  assert_valid t

let stabilize_does_not_worsen_shr () =
  (* The total SHR over members must not increase: every switch strictly
     reduces the (adjusted) merge SHR. *)
  let total_shr t = List.fold_left (fun acc m -> acc + Tree.shr t m) 0 (Tree.members t) in
  let g, source, members = random_scene 9 in
  let t = Smrp.build ~d_thresh:0.3 g ~source ~members in
  let before = total_shr t in
  ignore (Reshape.stabilize ~d_thresh:0.3 t);
  check "sum of member SHR not increased" true (total_shr t <= before)

let monitor_tracks_drift () =
  let f = Fixtures.fig4 () in
  let t = Tree.create f.Fixtures.graph ~source:f.Fixtures.s in
  Smrp.join ~d_thresh:0.3 t f.Fixtures.e;
  let m = Reshape.monitor t in
  check "no drift initially" true (Reshape.drifted m t ~threshold:0 = []);
  Smrp.join ~d_thresh:0.3 t f.Fixtures.g;
  Smrp.join ~d_thresh:0.3 t f.Fixtures.f;
  let drifted = Reshape.drifted m t ~threshold:1 in
  check "drift detected" true (drifted <> []);
  List.iter (fun v -> Reshape.note_reshaped m t v) drifted;
  check "snapshots refreshed" true (Reshape.drifted m t ~threshold:1 = [])

let condition_i_counts_switches () =
  let f = Fixtures.fig4 () in
  let t = Tree.create f.Fixtures.graph ~source:f.Fixtures.s in
  Smrp.join ~d_thresh:0.3 t f.Fixtures.e;
  let m = Reshape.monitor t in
  Smrp.join ~d_thresh:0.3 t f.Fixtures.g;
  Smrp.join ~d_thresh:0.3 t f.Fixtures.f;
  let switches = Reshape.run_condition_i ~d_thresh:0.3 ~threshold:1 m t in
  check_int "one switch (E)" 1 switches;
  assert_valid t

let condition_i_threshold_boundary () =
  (* §3.2.3 Condition I fires on drift {e strictly greater} than the
     threshold: a node whose SHR grew by exactly [k] must stay quiet at
     [threshold = k] and fire at [threshold = k - 1]. *)
  let f = Fixtures.fig4 () in
  let t = Tree.create f.Fixtures.graph ~source:f.Fixtures.s in
  Smrp.join ~d_thresh:0.3 t f.Fixtures.e;
  let m = Reshape.monitor t in
  let shr_old = Array.of_list (List.map (Tree.shr t) (Tree.on_tree_nodes t)) in
  let nodes_old = Array.of_list (Tree.on_tree_nodes t) in
  Smrp.join ~d_thresh:0.3 t f.Fixtures.g;
  Smrp.join ~d_thresh:0.3 t f.Fixtures.f;
  let checked = ref 0 in
  Array.iteri
    (fun i v ->
      if Tree.is_on_tree t v then begin
        let drift = Tree.shr t v - shr_old.(i) in
        if drift > 0 then begin
          incr checked;
          check "below the drift it fires" true
            (List.mem v (Reshape.drifted m t ~threshold:(drift - 1)));
          check "exactly at the drift it stays quiet" false
            (List.mem v (Reshape.drifted m t ~threshold:drift))
        end
      end)
    nodes_old;
  check "some node actually drifted" true (!checked > 0)

(* A 4-node scene where reshaping wants the link that just failed: member 2
   hangs off the slow branch 0-3-2 (delay 6) while 0-1-2 (delay 2) exists. *)
let slow_branch_scene () =
  let g = Graph.create 4 in
  let _e01 = Graph.add_edge g 0 1 1.0 in
  let e12 = Graph.add_edge g 1 2 1.0 in
  let e03 = Graph.add_edge g 0 3 1.0 in
  let e32 = Graph.add_edge g 3 2 5.0 in
  let t = Tree.create g ~source:0 in
  Tree.graft t ~nodes:[ 0; 3; 2 ] ~edges:[ e03; e32 ];
  Tree.add_member t 2;
  (g, t, e12)

let condition_ii_respects_concurrent_failure () =
  (* Without a failure the Condition-II sweep switches member 2 onto the
     fast path through node 1... *)
  let _, t, _ = slow_branch_scene () in
  let stats = Reshape.stabilize ~d_thresh:0.3 t in
  check "switches to the fast path" true (stats.Reshape.switches >= 1);
  check "now relayed by 1" true (Tree.is_on_tree t 1);
  assert_valid t;
  (* ...but when the timer fires while link 1-2 is down, the sweep must not
     route through the failed component: the member stays on the slow
     branch and the tree never touches the dead link. *)
  let module Failure = Smrp_core.Failure in
  let g, t, e12 = slow_branch_scene () in
  let failure = Failure.Link e12 in
  let stats = Reshape.stabilize ~d_thresh:0.3 ~failure t in
  check_int "no switch available" 0 stats.Reshape.switches;
  check "member still served" true (Tree.is_member t 2);
  List.iter
    (fun v ->
      match Tree.parent_edge t v with
      | Some e -> check "dead link untouched" true (Failure.edge_ok g failure e)
      | None -> ())
    (Tree.on_tree_nodes t);
  assert_valid t

let reshape_respects_bound () =
  (* After any reshape, each member still satisfies its D_thresh bound
     unless it was attached by fallback; with a connected Waxman graph and
     0.3 bound the switched nodes must respect it. *)
  let g, source, members = random_scene 10 in
  let t = Smrp.build ~d_thresh:0.3 g ~source ~members in
  ignore (Reshape.stabilize ~d_thresh:0.3 t);
  List.iter
    (fun m ->
      let spf = Option.get (Smrp.spf_distance t m) in
      check "not absurdly long" true (Tree.delay_to_source t m <= (2.0 *. spf) +. 1e-9))
    members

let qcheck_stabilize_valid =
  QCheck.Test.make ~name:"stabilize keeps trees valid" ~count:100 QCheck.small_int (fun seed ->
      let g, source, members = random_scene seed in
      let t = Smrp.build ~d_thresh:0.3 g ~source ~members in
      ignore (Reshape.stabilize ~d_thresh:0.3 t);
      Tree.validate t = Ok () && List.for_all (Tree.is_member t) members)

(* Differential oracle for the rewritten [stabilize]: the historical sweep
   semantics, spelled out as one detach-based [try_reshape] per node in
   deepest-first order.  Unit link delays keep every float sum exact, so
   the two implementations must agree bit for bit — same switch decisions,
   same rounds, same final edge set. *)
let unit_scene seed =
  let rng = Rng.create (seed + 77) in
  let n = 20 + Rng.int rng 60 in
  let topo = Waxman.generate ~link_delay:`Unit rng ~n ~alpha:0.2 ~beta:0.2 in
  let k = 2 + Rng.int rng (min 15 (n - 2)) in
  let sample = Smrp_rng.Rng.sample_without_replacement rng (k + 1) n in
  (topo.Waxman.graph, List.hd sample, List.tl sample)

let reference_stabilize ?failure ?(max_rounds = 10) t =
  let rec go rounds switches =
    if rounds = max_rounds then { Reshape.switches; rounds }
    else begin
      let nodes =
        Tree.on_tree_nodes t
        |> List.filter (fun v -> v <> Tree.source t)
        |> List.map (fun v -> (List.length (Tree.path_to_source t v), v))
        |> List.sort (fun (d1, v1) (d2, v2) -> compare (-d1, v1) (-d2, v2))
        |> List.map snd
      in
      let rs =
        List.fold_left
          (fun acc v ->
            if Tree.is_on_tree t v && v <> Tree.source t then
              if Reshape.try_reshape ~d_thresh:0.3 ?failure t v then acc + 1 else acc
            else acc)
          0 nodes
      in
      if rs = 0 then { Reshape.switches; rounds = rounds + 1 }
      else go (rounds + 1) (switches + rs)
    end
  in
  go 0 0

let edge_sets_equal a b = List.sort compare (Tree.tree_edges a) = List.sort compare (Tree.tree_edges b)

let qcheck_stabilize_matches_reference =
  QCheck.Test.make ~name:"stabilize matches the detach-based reference sweep" ~count:60
    QCheck.small_int (fun seed ->
      let g, source, members = unit_scene seed in
      let t = Smrp.build ~d_thresh:0.3 g ~source ~members in
      let t_ref = Tree.copy t and t_new = Tree.copy t in
      let s_ref = reference_stabilize t_ref in
      let s_new = Reshape.stabilize ~d_thresh:0.3 t_new in
      s_ref = s_new && edge_sets_equal t_ref t_new && Tree.validate t_new = Ok ())

let qcheck_stabilize_matches_reference_under_failure =
  QCheck.Test.make ~name:"stabilize matches the reference sweep under link failure" ~count:40
    QCheck.small_int (fun seed ->
      let module Failure = Smrp_core.Failure in
      let g, source, members = unit_scene seed in
      let t = Smrp.build ~d_thresh:0.3 g ~source ~members in
      let failure = Failure.Link (seed * 7 mod Graph.edge_count g) in
      let t_ref = Tree.copy t and t_new = Tree.copy t in
      let s_ref = reference_stabilize ~failure t_ref in
      let s_new = Reshape.stabilize ~d_thresh:0.3 ~failure t_new in
      s_ref = s_new && edge_sets_equal t_ref t_new && Tree.validate t_new = Ok ())

let qcheck_try_reshape_valid =
  QCheck.Test.make ~name:"any single reshape keeps the tree valid" ~count:100 QCheck.small_int
    (fun seed ->
      let g, source, members = random_scene seed in
      let t = Smrp.build ~d_thresh:0.3 g ~source ~members in
      List.for_all
        (fun v ->
          if Tree.is_on_tree t v && v <> source then begin
            ignore (Reshape.try_reshape ~d_thresh:0.3 t v);
            Tree.validate t = Ok ()
          end
          else true)
        (List.init (Graph.node_count g) Fun.id))

let () =
  Alcotest.run "reshape"
    [
      ( "behaviour",
        [
          Alcotest.test_case "no-op when stable" `Quick reshape_noop_when_stable;
          Alcotest.test_case "preserves membership" `Quick reshape_preserves_membership;
          Alcotest.test_case "rejects bad nodes" `Quick reshape_rejected_for_bad_nodes;
          Alcotest.test_case "stabilize terminates" `Quick stabilize_terminates;
          Alcotest.test_case "does not worsen SHR" `Quick stabilize_does_not_worsen_shr;
          Alcotest.test_case "respects the delay bound" `Quick reshape_respects_bound;
        ] );
      ( "condition_i",
        [
          Alcotest.test_case "monitor tracks drift" `Quick monitor_tracks_drift;
          Alcotest.test_case "counts switches" `Quick condition_i_counts_switches;
          Alcotest.test_case "threshold boundary is strict" `Quick condition_i_threshold_boundary;
        ] );
      ( "condition_ii",
        [
          Alcotest.test_case "timer sweep respects a concurrent failure" `Quick
            condition_ii_respects_concurrent_failure;
        ] );
      ( "properties",
        [
          qcheck_case qcheck_stabilize_valid;
          qcheck_case qcheck_try_reshape_valid;
          qcheck_case qcheck_stabilize_matches_reference;
          qcheck_case qcheck_stabilize_matches_reference_under_failure;
        ] );
    ]
