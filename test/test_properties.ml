(* Cross-cutting qcheck properties tying the whole stack together: every
   invariant here corresponds to a claim in the paper (§3.1–§3.2) or to a
   structural guarantee downstream code relies on. *)

module Graph = Smrp_graph.Graph
module Dijkstra = Smrp_graph.Dijkstra
module Rng = Smrp_rng.Rng
module Waxman = Smrp_topology.Waxman
module Tree = Smrp_core.Tree
module Spf = Smrp_core.Spf
module Smrp = Smrp_core.Smrp
module Reshape = Smrp_core.Reshape
module Failure = Smrp_core.Failure
module Recovery = Smrp_core.Recovery
module Session = Smrp_core.Session
module Scenario = Smrp_experiments.Scenario

(* Property tests run with a pinned PRNG state so failures are
   reproducible run over run. *)
let qcheck_case t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 424242 |]) t

let scene seed =
  let rng = Rng.create seed in
  let n = 20 + Rng.int rng 60 in
  let link_delay = if Rng.bool rng then `Euclidean else `Unit in
  let topo = Waxman.generate ~link_delay rng ~n ~alpha:0.2 ~beta:0.2 in
  let k = 2 + Rng.int rng (min 15 (n - 2)) in
  let sample = Smrp_rng.Rng.sample_without_replacement rng (k + 1) n in
  (topo.Waxman.graph, List.hd sample, List.tl sample)

(* §3.2.2: the delay bound.  Every SMRP member is within (1 + D_thresh) of
   its unicast shortest delay, or — in the fallback case — at the lowest
   total delay any merge point offered. *)
let bound_respected =
  QCheck.Test.make ~name:"every SMRP member respects the D_thresh bound (or its fallback)"
    ~count:150 QCheck.small_int (fun seed ->
      let g, source, members = scene seed in
      let d_thresh = 0.3 in
      let t = Tree.create g ~source in
      List.for_all
        (fun m ->
          (* Check against the join-time tree: a bounded candidate either
             exists (and the join must respect the bound) or the member
             legitimately falls back to the lowest-delay connection.  A
             joiner that is already on-tree keeps its relay path verbatim (a
             zero-cost subscription), so the bound does not apply to it. *)
          let was_on_tree = Tree.is_on_tree t m in
          let spf = Option.get (Smrp.spf_distance t m) in
          let had_bounded =
            (not was_on_tree)
            && List.exists
                 (fun c -> c.Smrp.total_delay <= ((1.0 +. d_thresh) *. spf) +. 1e-9)
                 (Smrp.candidates t ~joiner:m)
          in
          Smrp.join ~d_thresh t m;
          (not had_bounded)
          || Tree.delay_to_source t m <= ((1.0 +. d_thresh) *. spf) +. 1e-9)
        members)

(* SHR accounting matches Eq. 1 recomputed from scratch. *)
let shr_matches_link_definition =
  QCheck.Test.make ~name:"SHR by Eq. 2 equals SHR by Eq. 1 (link counting)" ~count:100
    QCheck.small_int (fun seed ->
      let g, source, members = scene seed in
      let t = Smrp.build ~d_thresh:0.3 g ~source ~members in
      (* N_{L(u,v)} = members whose tree path uses the link. *)
      let link_users eid =
        List.length
          (List.filter
             (fun m ->
               let rec walk v = function
                 | [] -> false
                 | p :: rest -> (
                     ignore p;
                     match Tree.parent_edge t v with
                     | Some e when e = eid -> true
                     | _ -> ( match Tree.parent t v with Some u -> walk u rest | None -> false))
               in
               walk m (Tree.path_to_source t m))
             members)
      in
      List.for_all
        (fun m ->
          let eq1 =
            let rec up v acc =
              match (Tree.parent t v, Tree.parent_edge t v) with
              | Some p, Some eid -> up p (acc + link_users eid)
              | _ -> acc
            in
            up m 0
          in
          eq1 = Tree.shr t m)
        members)

(* §3.1: the local detour never exceeds the global one, whatever tree and
   whatever failed on-tree link (not just the worst case). *)
let local_le_global_any_link =
  QCheck.Test.make ~name:"local <= global for every on-tree link failure" ~count:60
    QCheck.small_int (fun seed ->
      let g, source, members = scene seed in
      let t = Spf.build g ~source ~members in
      List.for_all
        (fun eid ->
          let f = Failure.Link eid in
          List.for_all
            (fun m ->
              match (Recovery.local_detour t f ~member:m, Recovery.global_detour t f ~member:m) with
              | Some l, Some gl -> l.Recovery.recovery_distance <= gl.Recovery.recovery_distance +. 1e-9
              | None, Some _ -> false
              | _ -> true)
            (Failure.affected_members t f))
        (Tree.tree_edges t))

(* Join/leave round trip: leaving everything returns the empty tree. *)
let full_churn_empties_tree =
  QCheck.Test.make ~name:"leaving all members returns to the bare source" ~count:100
    QCheck.small_int (fun seed ->
      let g, source, members = scene seed in
      let t = Smrp.build ~d_thresh:0.3 g ~source ~members in
      List.iter (Smrp.leave t) members;
      Tree.on_tree_nodes t = [ source ] && Tree.validate t = Ok ())

(* Join order changes the tree but never its member set or validity. *)
let join_order_immaterial_for_membership =
  QCheck.Test.make ~name:"any join order yields a valid tree with the same members" ~count:80
    QCheck.small_int (fun seed ->
      let g, source, members = scene seed in
      let t1 = Smrp.build ~d_thresh:0.3 g ~source ~members in
      let t2 = Smrp.build ~d_thresh:0.3 g ~source ~members:(List.rev members) in
      Tree.validate t1 = Ok () && Tree.validate t2 = Ok ()
      && Tree.members t1 = Tree.members t2)

(* Session repair conserves members: repaired + lost = affected. *)
let session_repair_conserves_members =
  QCheck.Test.make ~name:"session repair conserves members" ~count:60 QCheck.small_int
    (fun seed ->
      let g, source, members = scene seed in
      let s = Session.create g ~source ~protocol:(Session.Smrp { d_thresh = 0.3 }) in
      List.iter (Session.join s) members;
      match Failure.worst_case_for_member (Session.tree s) (List.hd members) with
      | None -> true
      | Some f ->
          let affected = Failure.affected_members (Session.tree s) f in
          let repairs = Session.fail s f in
          let lost =
            List.filter_map (function Session.Lost m -> Some m | _ -> None) (Session.events s)
          in
          List.length affected = List.length repairs + List.length lost
          && Tree.validate (Session.tree s) = Ok ())

(* Reshaping is idempotent at the fixpoint stabilize reaches (when it
   converged before the round limit). *)
let stabilize_idempotent =
  QCheck.Test.make ~name:"stabilize is idempotent once converged" ~count:60 QCheck.small_int
    (fun seed ->
      let g, source, members = scene seed in
      let t = Smrp.build ~d_thresh:0.3 g ~source ~members in
      let first = Reshape.stabilize ~d_thresh:0.3 ~max_rounds:20 t in
      if first.Reshape.rounds >= 20 then true (* did not converge; skip *)
      else
        let again = Reshape.stabilize ~d_thresh:0.3 ~max_rounds:20 t in
        again.Reshape.switches = 0)

(* Dijkstra with failure filters equals Dijkstra on a physically rebuilt
   graph (filters are semantically a graph edit). *)
let filters_equal_rebuilt_graph =
  QCheck.Test.make ~name:"failure filters behave like physical edge removal" ~count:60
    QCheck.small_int (fun seed ->
      let g, source, _ = scene seed in
      if Graph.edge_count g = 0 then true
      else begin
        let rng = Rng.create (seed + 1) in
        let eid = Rng.int rng (Graph.edge_count g) in
        let f = Failure.Link eid in
        let rebuilt = Graph.create (Graph.node_count g) in
        Graph.iter_edges
          (fun e ->
            if e.Graph.id <> eid then
              ignore (Graph.add_edge ~cost:e.Graph.cost rebuilt e.Graph.u e.Graph.v e.Graph.delay))
          g;
        let r1 = Dijkstra.run ~edge_ok:(Failure.edge_ok g f) g ~source in
        let r2 = Dijkstra.run rebuilt ~source in
        List.for_all
          (fun v -> Dijkstra.distance r1 v = Dijkstra.distance r2 v)
          (List.init (Graph.node_count g) Fun.id)
      end)

(* The workspace-backed CSR Dijkstra against the retained seed
   implementation: identical distances, parents and paths (not just
   reachability) under every filter combination, so each specialised search
   loop is exercised.  The workspace is dirtied by a run from a different
   source first, proving epoch-stamped clearing hides stale state. *)
let workspace_dijkstra_equals_reference =
  QCheck.Test.make ~name:"workspace Dijkstra equals the reference oracle under random filters"
    ~count:120 QCheck.small_int (fun seed ->
      let g, source, _ = scene seed in
      let n = Graph.node_count g in
      let rng = Rng.create (seed + 7) in
      (* mode 0: no filters (fast path); 1: absorb only; 2: everything. *)
      let mode = Rng.int rng 3 in
      let blocked = Array.init n (fun v -> v <> source && Rng.int rng 10 = 0) in
      let eblocked = Array.init (Graph.edge_count g) (fun _ -> Rng.int rng 10 = 0) in
      let absorbed = Array.init n (fun _ -> Rng.int rng 6 = 0) in
      let ws = Dijkstra.workspace () in
      ignore (Dijkstra.run ~workspace:ws g ~source:(if source = 0 then n - 1 else 0));
      let r, oracle =
        match mode with
        | 0 -> (Dijkstra.run ~workspace:ws g ~source, Dijkstra.run_reference g ~source)
        | 1 ->
            let absorb v = absorbed.(v) in
            ( Dijkstra.run ~absorb ~workspace:ws g ~source,
              Dijkstra.run_reference ~absorb g ~source )
        | _ ->
            let node_ok v = not blocked.(v)
            and edge_ok e = not eblocked.(e)
            and absorb v = absorbed.(v) in
            ( Dijkstra.run ~node_ok ~edge_ok ~absorb ~workspace:ws g ~source,
              Dijkstra.run_reference ~node_ok ~edge_ok ~absorb g ~source )
      in
      List.for_all
        (fun v ->
          Dijkstra.distance r v = Dijkstra.distance oracle v
          && Dijkstra.parent r v = Dijkstra.parent oracle v
          && Dijkstra.path_nodes r v = Dijkstra.path_nodes oracle v
          && Dijkstra.path_edges r v = Dijkstra.path_edges oracle v)
        (List.init n Fun.id))

(* The domain-pool contract: fanning scenarios out over domains is
   byte-identical to the sequential map, member by member and float by
   float. *)
let run_many_jobs_immaterial =
  QCheck.Test.make ~name:"Scenario.run_many is identical whatever the job count" ~count:3
    QCheck.small_int (fun seed ->
      let configs =
        List.init 4 (fun i ->
            { Scenario.default with Scenario.n = 40; group_size = 8; seed = (73 * seed) + i })
      in
      let seq = Scenario.run_many ~jobs:1 configs in
      let par = Scenario.run_many ~jobs:4 configs in
      List.for_all2
        (fun a b ->
          a.Scenario.source = b.Scenario.source
          && a.Scenario.members = b.Scenario.members
          && a.Scenario.outcomes = b.Scenario.outcomes
          && a.Scenario.average_degree = b.Scenario.average_degree
          && a.Scenario.cost_spf = b.Scenario.cost_spf
          && a.Scenario.cost_smrp = b.Scenario.cost_smrp
          && Scenario.aggregates a = Scenario.aggregates b)
        seq par)

let () =
  Alcotest.run "properties"
    [
      ( "paper_invariants",
        [
          qcheck_case bound_respected;
          qcheck_case shr_matches_link_definition;
          qcheck_case local_le_global_any_link;
        ] );
      ( "structural",
        [
          qcheck_case full_churn_empties_tree;
          qcheck_case join_order_immaterial_for_membership;
          qcheck_case session_repair_conserves_members;
          qcheck_case stabilize_idempotent;
          qcheck_case filters_equal_rebuilt_graph;
        ] );
      ( "performance_refactor",
        [
          qcheck_case workspace_dijkstra_equals_reference;
          qcheck_case run_many_jobs_immaterial;
        ] );
    ]
