(* Run reports: metrics-to-variant projection, JSON round-trips, renderer
   output, the Figures/Dashboard collector hooks, and the parallel identity
   of collected reports. *)

module Metrics = Smrp_obs.Metrics
module Sketch = Smrp_obs.Sketch
module Series = Smrp_obs.Series
module Report = Smrp_obs.Report
module Figures = Smrp_experiments.Figures
module Dashboard = Smrp_experiments.Dashboard
module Scenario = Smrp_experiments.Scenario
module Reshape = Smrp_core.Reshape

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  at 0

(* A registry exercising every instrument kind. *)
let populated_metrics () =
  let m = Metrics.create () in
  Metrics.Counter.add (Metrics.counter m "runs") 3;
  Metrics.Gauge.set (Metrics.gauge m "queue") 5.0;
  let h = Metrics.histogram m ~base:2.0 ~lowest:1.0 ~count:3 "hist" in
  List.iter (Metrics.Histogram.observe h) [ 1.0; 3.0 ];
  let q = Metrics.sketch m "rd.q" in
  List.iter (Sketch.observe q) [ 1.0; 2.0; 2.0; 5.0 ];
  let s = Metrics.series m "drops" in
  Series.observe s ~ts:0.5 1.0;
  Series.observe s ~ts:3.0 2.0;
  m

let projection () =
  let v = Report.of_metrics ~name:"base" ~attrs:[ ("d", "0.30") ] (populated_metrics ()) in
  check_str "name" "base" v.Report.v_name;
  check "attrs kept" true (v.Report.v_attrs = [ ("d", "0.30") ]);
  (* Counters and histogram counts land in v_counts; gauges and histogram
     sums in v_values; the max gauge entry only appears when it differs
     from the last value. *)
  check "counts" true
    (v.Report.v_counts = [ ("hist.count", 2); ("runs", 3) ]);
  check "values" true (v.Report.v_values = [ ("hist.sum", 4.0); ("queue", 5.0) ]);
  (match v.Report.v_dists with
  | [ ("rd.q", d) ] ->
      check_int "dist count" 4 d.Report.d_count;
      Alcotest.(check (float 0.0)) "dist sum" 10.0 d.Report.d_sum;
      Alcotest.(check (float 0.0)) "dist min" 1.0 d.Report.d_min;
      Alcotest.(check (float 0.0)) "dist max" 5.0 d.Report.d_max;
      check "p50 within bound" true
        (Float.abs (d.Report.d_p50 -. 2.0) <= (d.Report.d_rel_err *. 2.0) +. 1e-9)
  | l -> Alcotest.failf "expected one dist, got %d" (List.length l));
  match v.Report.v_series with
  | [ ("drops", view) ] ->
      check "series kind" true (view.Series.v_kind = Series.Sum);
      check "series points" true (view.Series.v_points = [ (0.0, 1.0); (3.0, 2.0) ])
  | l -> Alcotest.failf "expected one series, got %d" (List.length l)

let json_roundtrip () =
  let v = Report.of_metrics ~name:"a" (populated_metrics ()) in
  let last = Series.create ~kind:Series.Last () in
  Series.observe last ~ts:1.0 4.0;
  let m2 = Metrics.create () in
  Metrics.Counter.incr (Metrics.counter m2 "runs");
  let r =
    Report.make ~title:"t" ~meta:[ ("seed", "42") ]
      [ v; Report.of_metrics ~name:"b" m2 ]
  in
  let s = Report.to_string r in
  let r' = Report.of_string s in
  check "parse back is structurally equal" true (r = r');
  check_str "re-serialization is the identity" s (Report.to_string r');
  (* Minified and pretty forms parse to the same report. *)
  check "minified round-trip" true (Report.of_string (Report.to_string ~minify:true r) = r)

let malformed_rejected () =
  (match Report.of_string "nope" with
  | _ -> Alcotest.fail "accepted non-JSON input"
  | exception Bench_support.Bench_json.Parse_error _ -> ());
  let raises_invalid s =
    match Report.of_string s with
    | _ -> Alcotest.failf "accepted malformed report %s" s
    | exception Invalid_argument _ -> ()
  in
  raises_invalid "{}";
  raises_invalid {|{"schema_version": 99, "title": "t", "meta": {}, "variants": []}|};
  raises_invalid {|{"schema_version": 1, "title": "t", "meta": {}}|};
  (* A non-integer count is a schema violation, not a silent truncation. *)
  raises_invalid
    {|{"schema_version": 1, "title": "t", "meta": {}, "variants": [
        {"name": "v", "attrs": {}, "counts": {"runs": 1.5}, "values": {},
         "dists": {}, "series": {}}]}|}

let renderers_smoke () =
  let r =
    Report.make ~title:"smoke" ~meta:[ ("seed", "1") ]
      [ Report.of_metrics ~name:"alpha" (populated_metrics ());
        Report.of_metrics ~name:"beta" (populated_metrics ()) ]
  in
  let ascii = Report.render_ascii r in
  List.iter
    (fun affix -> check ("ascii mentions " ^ affix) true (contains ~affix ascii))
    [ "smoke"; "alpha"; "beta"; "rd.q"; "drops"; "p99" ];
  let html = Report.render_html r in
  List.iter
    (fun affix -> check ("html contains " ^ affix) true (contains ~affix html))
    [ "<!DOCTYPE html>"; "</html>"; "<svg"; "polyline"; "prefers-color-scheme"; "alpha"; "beta" ];
  (* Self-contained: no external fetches. *)
  check "no http references" false (contains ~affix:"http://" html || contains ~affix:"https://" html);
  (* Variant names are escaped on the way into markup. *)
  let evil =
    Report.make ~title:"<t>" [ Report.of_metrics ~name:"<script>x" (Metrics.create ()) ]
  in
  check "names escaped" false (contains ~affix:"<script>x" (Report.render_html evil))

let figures_report_hook () =
  let run jobs =
    let c = Report.collector () in
    ignore (Figures.Fig8.run ~jobs ~report:c ~values:[ 0.2; 0.3 ] ~scenarios:3 ());
    Report.of_collector ~title:"fig8" c
  in
  let r1 = run 1 in
  let r4 = run 4 in
  check "variants named after the sweep" true
    (List.map (fun v -> v.Report.v_name) r1.Report.r_variants = [ "smrp d=0.20"; "smrp d=0.30" ]);
  List.iter
    (fun v ->
      check "runs counted" true (List.assoc_opt "scenario.runs" v.Report.v_counts = Some 3);
      check "rd dist recorded" true (List.mem_assoc "scenario.rd_local_smrp.q" v.Report.v_dists))
    r1.Report.r_variants;
  check_str "report byte-identical whatever jobs" (Report.to_string r1) (Report.to_string r4)

let dashboard_identity_and_content () =
  let config =
    { Dashboard.quick with Dashboard.scenarios = 2; d_values = [ 0.3 ]; latency_runs = 1 }
  in
  let seq = Dashboard.run ~jobs:1 config in
  let par = Dashboard.run ~jobs:4 config in
  let s = Report.to_string seq in
  check_str "sequential and 4-domain reports byte-identical" s (Report.to_string par);
  check_str "round-trip exact" s (Report.to_string (Report.of_string s));
  check "variant order" true
    (List.map (fun v -> v.Report.v_name) seq.Report.r_variants
    = [ "spf baseline"; "smrp d=0.30"; "smrp query"; "smrp (packet sim)"; "pim (packet sim)" ]);
  (* Aligned dist names: every topology variant answers the same rows. *)
  List.iter
    (fun name ->
      let v = List.find (fun v -> v.Report.v_name = name) seq.Report.r_variants in
      check (name ^ " has rd.q") true (List.mem_assoc "rd.q" v.Report.v_dists);
      check (name ^ " has delay.q") true (List.mem_assoc "delay.q" v.Report.v_dists))
    [ "spf baseline"; "smrp d=0.30"; "smrp query" ];
  (* The packet-sim variants carry the recovery sketch and at least one
     sim-time series. *)
  let sim = List.find (fun v -> v.Report.v_name = "smrp (packet sim)") seq.Report.r_variants in
  check "recovery latency dist" true (List.mem_assoc "recovery.total.q" sim.Report.v_dists);
  check "frame-drop series" true (List.mem_assoc "net.frame_drops" sim.Report.v_series);
  check "members series" true (List.mem_assoc "proto.members_disrupted" sim.Report.v_series);
  let html = Report.render_html seq in
  check "html has sparkline" true (contains ~affix:"polyline" html)

let reshape_stabilize_metrics () =
  let sc = Scenario.run { Scenario.default with Scenario.seed = 77 } in
  let m = Metrics.create () in
  let stats = Reshape.stabilize ~metrics:m sc.Scenario.smrp_tree in
  let count name =
    match List.assoc_opt name (Metrics.snapshot m) with
    | Some (Metrics.Counter_value n) -> n
    | _ -> Alcotest.failf "counter %S missing" name
  in
  check_int "rounds counter matches stats" stats.Reshape.rounds (count "reshape.rounds");
  check_int "switches counter matches stats" stats.Reshape.switches (count "reshape.switches");
  check "every round scans the tree" true (count "reshape.scans" >= count "reshape.rounds");
  match List.assoc_opt "reshape.stabilize_s" (Metrics.snapshot m) with
  | Some (Metrics.Sketch_value s) ->
      check_int "one sweep observed" 1 s.Sketch.s_count;
      check "wall time non-negative" true (s.Sketch.s_sum >= 0.0)
  | _ -> Alcotest.fail "reshape.stabilize_s missing"

let () =
  Alcotest.run "report"
    [
      ( "model",
        [
          Alcotest.test_case "metrics projection" `Quick projection;
          Alcotest.test_case "json round-trip" `Quick json_roundtrip;
          Alcotest.test_case "malformed rejected" `Quick malformed_rejected;
          Alcotest.test_case "renderers" `Quick renderers_smoke;
        ] );
      ( "campaigns",
        [
          Alcotest.test_case "figures collector hook" `Quick figures_report_hook;
          Alcotest.test_case "dashboard parallel identity" `Slow dashboard_identity_and_content;
          Alcotest.test_case "reshape stabilize metrics" `Quick reshape_stabilize_metrics;
        ] );
    ]
