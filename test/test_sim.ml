(* Discrete-event engine, network layer and protocol automata. *)

module Graph = Smrp_graph.Graph
module Fixtures = Smrp_topology.Fixtures
module Tree = Smrp_core.Tree
module Engine = Smrp_sim.Engine
module Net = Smrp_sim.Net
module Protocol = Smrp_sim.Protocol

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let edge g u v = (Option.get (Graph.edge_between g u v)).Graph.id

(* -- Engine ------------------------------------------------------------ *)

let events_fire_in_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~delay:3.0 (fun () -> log := 3 :: !log));
  ignore (Engine.schedule e ~delay:1.0 (fun () -> log := 1 :: !log));
  ignore (Engine.schedule e ~delay:2.0 (fun () -> log := 2 :: !log));
  Engine.run e;
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !log);
  check_float "clock at last event" 3.0 (Engine.now e)

let equal_times_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  List.iter (fun i -> ignore (Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log))) [ 1; 2; 3 ];
  Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !log)

let cancel_prevents_firing () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~delay:1.0 (fun () -> fired := true) in
  Engine.cancel e h;
  Engine.run e;
  check "cancelled" false !fired

let nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~delay:1.0 (fun () ->
         log := `A :: !log;
         ignore (Engine.schedule e ~delay:0.5 (fun () -> log := `B :: !log))));
  Engine.run e;
  check_int "two events" 2 (List.length !log);
  check_float "clock" 1.5 (Engine.now e)

let run_until_stops () =
  let e = Engine.create () in
  let count = ref 0 in
  ignore (Engine.every e ~period:1.0 (fun () -> incr count));
  Engine.run ~until:5.5 e;
  check_int "five periods" 5 !count;
  check_float "clock clamped" 5.5 (Engine.now e)

let every_cancellable () =
  let e = Engine.create () in
  let count = ref 0 in
  let h = Engine.every e ~period:1.0 (fun () -> incr count) in
  ignore (Engine.schedule e ~delay:3.5 (fun () -> Engine.cancel e h));
  Engine.run ~until:10.0 e;
  check_int "stopped after cancel" 3 !count

let rejects_past_and_negative () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay" (Invalid_argument "Engine.schedule: negative delay")
    (fun () -> ignore (Engine.schedule e ~delay:(-1.0) (fun () -> ())));
  ignore (Engine.schedule e ~delay:1.0 (fun () -> ()));
  Engine.run e;
  Alcotest.check_raises "past time" (Invalid_argument "Engine.schedule_at: time in the past")
    (fun () -> ignore (Engine.schedule_at e ~time:0.5 (fun () -> ())))

let every_with_jitter () =
  let e = Engine.create () in
  let times = ref [] in
  let jitter =
    let flip = ref true in
    fun () ->
      flip := not !flip;
      if !flip then 0.25 else -0.25
  in
  ignore (Engine.every e ~period:1.0 ~jitter (fun () -> times := Engine.now e :: !times));
  Engine.run ~until:4.0 e;
  check "fired several times" true (List.length !times >= 3);
  (* Jittered periods stay within [0.75, 1.25] of each other. *)
  let rec gaps = function
    | a :: (b :: _ as tl) -> (a -. b) :: gaps tl
    | _ -> []
  in
  List.iter (fun g -> check "gap within jitter band" true (g >= 0.74 && g <= 1.26)) (gaps !times)

(* Timer-wheel edge cases: the scaled-int clock and hierarchical wheel have
   sharp corners (same-tick rescheduling, the overflow list past the wheel
   horizon, handle recycling, tick quantization) that a float heap never
   had.  Each gets pinned against both queue implementations where it
   matters. *)

let zero_delay_self_reschedule () =
  let e = Engine.create () in
  let count = ref 0 in
  let other = ref 0 in
  let rec tick () =
    incr count;
    if !count < 5 then ignore (Engine.schedule e ~delay:0.0 tick)
  in
  ignore (Engine.schedule e ~delay:1.0 tick);
  (* A same-tick neighbour scheduled before the chain starts: FIFO puts it
     between the first firing and the zero-delay follow-ups. *)
  ignore (Engine.schedule e ~delay:1.0 (fun () -> other := !count));
  Engine.run e;
  check_int "chain ran to completion" 5 !count;
  check_int "neighbour fired after the first link only" 1 !other;
  check_float "clock never advanced past the tick" 1.0 (Engine.now e)

let far_future_overflow_cascade () =
  (* The wheel horizon is 2^35 ticks (~3436 s): events beyond it park in
     the overflow list and must cascade back in, in order, mixed with near
     events scheduled later. *)
  List.iter
    (fun impl ->
      let e = Engine.create ~impl () in
      let log = ref [] in
      let at d tag = ignore (Engine.schedule e ~delay:d (fun () -> log := tag :: !log)) in
      at 5000.0 `Far2;
      at 9000.0 `Far3;
      at 4000.0 `Far1;
      at 1.0 `Near;
      ignore
        (Engine.schedule e ~delay:2.0 (fun () ->
             (* scheduled mid-run, still lands between Near and Far1 *)
             at 10.0 `Mid));
      Engine.run e;
      check "overflow ordering" true (List.rev !log = [ `Near; `Mid; `Far1; `Far2; `Far3 ]);
      check_float "clock at last event" 9000.0 (Engine.now e))
    [ Engine.Wheel; Engine.Reference ]

let cancel_of_recycled_handle_is_noop () =
  let e = Engine.create () in
  let fired = ref [] in
  let h1 = Engine.schedule e ~delay:1.0 (fun () -> fired := 1 :: !fired) in
  Engine.run e;
  (* h1's pool slot is free now; the next schedule recycles it with a new
     generation stamp. *)
  ignore (Engine.schedule e ~delay:1.0 (fun () -> fired := 2 :: !fired));
  Engine.cancel e h1;
  Engine.cancel e h1;
  Engine.run e;
  Alcotest.(check (list int)) "stale cancel left the recycled event alone" [ 1; 2 ]
    (List.rev !fired)

let tick_rounding_at_bucket_boundaries () =
  check_float "tick roundtrip" 1.0 (Engine.time_of_tick (Engine.tick_of_time 1.0));
  (* A delay within half a tick of another lands on the same tick and fires
     FIFO; one just past the boundary keeps its own slot. *)
  let half_tick = 0.5 /. Engine.ticks_per_second in
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~delay:(1.0 +. (0.8 *. half_tick)) (fun () -> log := `Same1 :: !log));
  ignore (Engine.schedule e ~delay:1.0 (fun () -> log := `Same2 :: !log));
  ignore (Engine.schedule e ~delay:(1.0 +. (3.0 *. half_tick)) (fun () -> log := `Later :: !log));
  Engine.run e;
  check "sub-tick neighbours collapse and stay FIFO" true
    (List.rev !log = [ `Same1; `Same2; `Later ]);
  (* Wheel-slot boundaries (multiples of 32 ticks from the hand) must not
     reorder: exercise a window straddling several level-0 slot edges. *)
  let e = Engine.create () in
  let order = ref [] in
  for i = 0 to 99 do
    let d = Engine.time_of_tick (30 + i) in
    ignore (Engine.schedule e ~delay:d (fun () -> order := i :: !order))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "boundary window in order" (List.init 100 Fun.id) (List.rev !order)

let queue_depth_counts_live_only () =
  let module Metrics = Smrp_obs.Metrics in
  let obs = Smrp_obs.Obs.create () in
  let m = Smrp_obs.Obs.metrics obs in
  let e = Engine.create ~obs () in
  let hs = List.init 3 (fun _ -> Engine.schedule e ~delay:1.0 (fun () -> ())) in
  check_int "three live" 3 (Engine.pending e);
  Engine.cancel e (List.hd hs);
  check_int "two live after cancel" 2 (Engine.pending e);
  check_float "depth gauge tracks live events, not queue entries" 2.0
    (Metrics.Gauge.value (Metrics.gauge m "engine.queue_depth"));
  check_int "pending-cancel counter" 1
    (Metrics.Counter.value (Metrics.counter m "engine.events_cancelled_pending"));
  Engine.run e;
  check_float "drained" 0.0 (Metrics.Gauge.value (Metrics.gauge m "engine.queue_depth"));
  check_int "lazy delete surfaced on pop" 1
    (Metrics.Counter.value (Metrics.counter m "engine.events_cancelled"));
  check_int "fired excludes the cancelled one" 2 (Engine.events_fired e)

let wheel_matches_reference_engine () =
  (* Identical pseudo-random workloads on both queue implementations must
     produce identical firing sequences (fingerprint covers tick + code). *)
  let run impl =
    let e = Engine.create ~impl () in
    let log = ref [] in
    let code = Engine.register e (fun a b -> log := (Engine.now e, a, b) :: !log) in
    let seed = ref 12345 in
    let next () =
      seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
      !seed
    in
    let cancels = ref [] in
    for i = 0 to 199 do
      let d = float_of_int (next () mod 10_000) /. 777.0 in
      if i mod 3 = 0 then
        Engine.schedule_code e ~delay:d ~code ~a:i ~b:(next () mod 97)
      else begin
        let h = Engine.schedule e ~delay:d (fun () -> log := (Engine.now e, -1, i) :: !log) in
        if i mod 5 = 1 then cancels := h :: !cancels
      end
    done;
    List.iter (Engine.cancel e) !cancels;
    Engine.run e;
    (Engine.fingerprint e, Engine.events_fired e, List.rev !log)
  in
  let fw, nw, lw = run Engine.Wheel in
  let fr, nr, lr = run Engine.Reference in
  check_int "same event count" nr nw;
  check "same fingerprint" true (fw = fr);
  check "same firing log" true (lw = lr)

(* -- Net --------------------------------------------------------------- *)

let frames_arrive_after_link_delay () =
  let engine = Engine.create () in
  let g = Fixtures.line 3 in
  let arrivals = ref [] in
  let net = ref None in
  let n =
    Net.create engine g ~handler:(fun _ ~at ~from ~eid:_ msg ->
        arrivals := (Engine.now engine, at, from, msg) :: !arrivals)
  in
  net := Some n;
  check "accepted" true (Net.send n ~src:0 ~dst:1 "hello");
  Engine.run engine;
  (match !arrivals with
  | [ (t, at, from, "hello") ] ->
      check_float "propagation delay" 1.0 t;
      check_int "delivered to" 1 at;
      check_int "from" 0 from
  | _ -> Alcotest.fail "expected one delivery");
  check_int "frames counted" 1 (Net.frames_sent n)

let failed_link_drops () =
  let engine = Engine.create () in
  let g = Fixtures.line 3 in
  let arrivals = ref 0 in
  let n = Net.create engine g ~handler:(fun _ ~at:_ ~from:_ ~eid:_ _ -> incr arrivals) in
  Net.fail_link n (edge g 0 1);
  check "rejected at send" false (Net.send n ~src:0 ~dst:1 ());
  Engine.run engine;
  check_int "nothing delivered" 0 !arrivals;
  Net.restore_link n (edge g 0 1);
  check "accepted after restore" true (Net.send n ~src:0 ~dst:1 ())

let in_flight_frames_die_with_the_link () =
  let engine = Engine.create () in
  let g = Fixtures.line 3 in
  let arrivals = ref 0 in
  let n = Net.create engine g ~handler:(fun _ ~at:_ ~from:_ ~eid:_ _ -> incr arrivals) in
  check "sent" true (Net.send n ~src:0 ~dst:1 ());
  (* The link dies while the frame is in flight. *)
  ignore (Engine.schedule engine ~delay:0.5 (fun () -> Net.fail_link n (edge g 0 1)));
  Engine.run engine;
  check_int "dropped at delivery" 0 !arrivals

let failure_drops_counted_separately () =
  (* Failure drops (send-time and in-flight) are accounted apart from
     Bernoulli loss. *)
  let engine = Engine.create () in
  let g = Fixtures.line 3 in
  let delivered = ref 0 in
  let n = Net.create engine g ~handler:(fun _ ~at:_ ~from:_ ~eid:_ _ -> incr delivered) in
  Net.fail_link n (edge g 0 1);
  check "rejected" false (Net.send n ~src:0 ~dst:1 ());
  check_int "send-time failure drop" 1 (List.assoc "dropped_failure_at_send" (Net.counters n));
  check_int "not counted as sent" 0 (Net.frames_sent n);
  Net.restore_link n (edge g 0 1);
  check "accepted" true (Net.send n ~src:0 ~dst:1 ());
  ignore (Engine.schedule engine ~delay:0.5 (fun () -> Net.fail_link n (edge g 0 1)));
  Engine.run engine;
  check_int "in-flight failure drop" 1 (List.assoc "dropped_failure_in_flight" (Net.counters n));
  check_int "total failure drops" 2 (Net.frames_dropped_failure n);
  check_int "bernoulli loss untouched" 0 (Net.frames_lost n);
  check_int "nothing delivered" 0 !delivered;
  check_int "delivered counter agrees" 0 (Net.frames_delivered n)

let failed_node_blocks () =
  let engine = Engine.create () in
  let g = Fixtures.line 3 in
  let n = Net.create engine g ~handler:(fun _ ~at:_ ~from:_ ~eid:_ _ -> ()) in
  Net.fail_node n 1;
  check "to dead node" false (Net.send n ~src:0 ~dst:1 ());
  check "node state" false (Net.node_up n 1);
  match Net.as_failure n with
  | Some (Smrp_core.Failure.Node 1) -> ()
  | _ -> Alcotest.fail "expected node failure"

let non_adjacent_send_rejected () =
  let engine = Engine.create () in
  let g = Fixtures.line 3 in
  let n = Net.create engine g ~handler:(fun _ ~at:_ ~from:_ ~eid:_ _ -> ()) in
  Alcotest.check_raises "not adjacent" (Invalid_argument "Net.send: nodes not adjacent") (fun () ->
      ignore (Net.send n ~src:0 ~dst:2 ()))

(* -- Protocol ---------------------------------------------------------- *)

let data_flows_to_member () =
  let engine = Engine.create () in
  let g = Fixtures.line 3 in
  let p = Protocol.create engine g ~source:0 in
  Protocol.start p;
  ignore (Engine.schedule engine ~delay:0.5 (fun () -> Protocol.join p 2));
  Engine.run ~until:10.0 engine;
  let report =
    List.find (fun r -> r.Protocol.member = 2) (Protocol.reports p)
  in
  check "data received" true (report.Protocol.data_received > 50);
  check "never disrupted" true (report.Protocol.detected = None);
  check "tree matches" true (Tree.is_member (Protocol.tree p) 2)

let leave_stops_data () =
  let engine = Engine.create () in
  let g = Fixtures.line 3 in
  let p = Protocol.create engine g ~source:0 in
  Protocol.start p;
  ignore (Engine.schedule engine ~delay:0.5 (fun () -> Protocol.join p 2));
  ignore (Engine.schedule engine ~delay:5.0 (fun () -> Protocol.leave p 2));
  Engine.run ~until:10.0 engine;
  check "left the control tree" false (Tree.is_member (Protocol.tree p) 2)

let local_recovery_beats_global () =
  let engine_for strategy =
    let engine = Engine.create () in
    let g = Fixtures.ring 5 in
    let config = { Protocol.default_config with Protocol.strategy; ospf_convergence = 5.0 } in
    let p = Protocol.create ~config engine g ~source:0 in
    Protocol.start p;
    ignore (Engine.schedule engine ~delay:0.5 (fun () -> Protocol.join p 2));
    Engine.run ~until:20.0 engine;
    (* Fail the 0-1 link: member 2 must re-join around the ring. *)
    Protocol.inject_link_failure p (edge g 0 1);
    Engine.run ~until:60.0 engine;
    List.find (fun r -> r.Protocol.member = 2) (Protocol.reports p)
  in
  let local = engine_for Protocol.Local in
  let global = engine_for Protocol.Global in
  let restored r =
    match r.Protocol.restored with Some t -> t | None -> Alcotest.fail "not restored"
  in
  check "both restore" true (local.Protocol.restored <> None && global.Protocol.restored <> None);
  check "local is faster" true (restored local < restored global);
  check "global pays the reconvergence wait" true (restored global >= 5.0)

let control_and_data_counted () =
  let engine = Engine.create () in
  let g = Fixtures.line 3 in
  let p = Protocol.create engine g ~source:0 in
  Protocol.start p;
  ignore (Engine.schedule engine ~delay:0.5 (fun () -> Protocol.join p 2));
  Engine.run ~until:10.0 engine;
  check "control messages flow" true (Protocol.control_messages p > 0);
  check "data messages flow" true (Protocol.data_messages p > 100)

let lossy_links_counted () =
  let engine = Engine.create () in
  let g = Fixtures.line 2 in
  let received = ref 0 in
  let n = Net.create engine g ~handler:(fun _ ~at:_ ~from:_ ~eid:_ _ -> incr received) in
  Net.set_loss n ~rng:(Smrp_rng.Rng.create 5) ~rate:0.3;
  for _ = 1 to 1000 do
    ignore (Net.send n ~src:0 ~dst:1 ())
  done;
  Engine.run engine;
  check_int "sent counts all" 1000 (Net.frames_sent n);
  check_int "lost + received = sent" 1000 (Net.frames_lost n + !received);
  check "roughly the configured rate" true (Net.frames_lost n > 230 && Net.frames_lost n < 370)

let soft_state_survives_loss () =
  (* 10% loss on every frame: refreshes and data redundancy keep the member
     served, and the retry logic completes recovery despite lost Join_reqs. *)
  let engine = Engine.create () in
  let g = Fixtures.ring 5 in
  let p = Protocol.create engine g ~source:0 in
  Net.set_loss (Protocol.net p) ~rng:(Smrp_rng.Rng.create 11) ~rate:0.1;
  Protocol.start p;
  ignore (Engine.schedule engine ~delay:0.5 (fun () -> Protocol.join p 2));
  Engine.run ~until:30.0 engine;
  let report = List.find (fun r -> r.Protocol.member = 2) (Protocol.reports p) in
  (* ~295 packets offered over 29.5s at 10/s through 2 lossy hops (~19%
     frame loss), plus up to one 5 s dark window if the initial Join_req is
     lost before a periodic join refresh heals it: at least half must
     arrive. *)
  check "most data arrives despite loss" true (report.Protocol.data_received > 120);
  Protocol.inject_link_failure p (edge g 0 1);
  Engine.run ~until:90.0 engine;
  let report = List.find (fun r -> r.Protocol.member = 2) (Protocol.reports p) in
  check "still recovers under loss" true (report.Protocol.restored <> None)

let reshaping_switches_at_protocol_level () =
  (* The Figure 4/5 walkthrough end-to-end in the simulator: E, G, F join;
     the Condition-II timer reshapes E onto E-C-A-S make-before-break, and
     E keeps receiving data throughout. *)
  let f = Smrp_topology.Fixtures.fig4 () in
  let g = f.Smrp_topology.Fixtures.graph in
  let engine = Engine.create () in
  let config = { Protocol.default_config with Protocol.reshape_period = Some 10.0 } in
  let p = Protocol.create ~config engine g ~source:f.Smrp_topology.Fixtures.s in
  Protocol.start p;
  ignore (Engine.schedule engine ~delay:0.5 (fun () -> Protocol.join p f.Smrp_topology.Fixtures.e));
  ignore (Engine.schedule engine ~delay:1.5 (fun () -> Protocol.join p f.Smrp_topology.Fixtures.g));
  ignore (Engine.schedule engine ~delay:2.5 (fun () -> Protocol.join p f.Smrp_topology.Fixtures.f));
  Engine.run ~until:60.0 engine;
  let tree = Protocol.tree p in
  Alcotest.(check (list int)) "E switched to the C path"
    [
      f.Smrp_topology.Fixtures.e;
      f.Smrp_topology.Fixtures.c;
      f.Smrp_topology.Fixtures.a;
      f.Smrp_topology.Fixtures.s;
    ]
    (Tree.path_to_source tree f.Smrp_topology.Fixtures.e);
  let r =
    List.find (fun r -> r.Protocol.member = f.Smrp_topology.Fixtures.e) (Protocol.reports p)
  in
  check "E never starved during the switch" true (r.Protocol.detected = None);
  (* ~595 packets offered; E's first packet needs ~6.6 s of propagation
     (fig4 link delays are ~1 s), and the mid-run switch may cost a moment. *)
  check "E kept receiving" true (r.Protocol.data_received > 510);
  match Tree.validate tree with Ok () -> () | Error e -> Alcotest.fail e

let query_scheme_join_flows () =
  (* Query-scheme joins on the Figure 1 topology: D's neighbours relay the
     query to the tree, D picks among the answers and data flows. *)
  let f = Smrp_topology.Fixtures.fig1 () in
  let g = f.Smrp_topology.Fixtures.graph in
  let engine = Engine.create () in
  let config = { Protocol.default_config with Protocol.join_mode = Protocol.Query_scheme } in
  let p = Protocol.create ~config engine g ~source:f.Smrp_topology.Fixtures.s in
  Protocol.start p;
  ignore (Engine.schedule engine ~delay:0.5 (fun () -> Protocol.join p f.Smrp_topology.Fixtures.c));
  ignore (Engine.schedule engine ~delay:5.0 (fun () -> Protocol.join p f.Smrp_topology.Fixtures.d));
  Engine.run ~until:30.0 engine;
  let queries = List.assoc "query" (Protocol.message_breakdown p) in
  check "queries were exchanged" true (queries > 0);
  List.iter
    (fun m ->
      let r = List.find (fun r -> r.Protocol.member = m) (Protocol.reports p) in
      check "member receives data" true (r.Protocol.data_received > 100))
    [ f.Smrp_topology.Fixtures.c; f.Smrp_topology.Fixtures.d ];
  match Tree.validate (Protocol.tree p) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let query_scheme_falls_back () =
  (* A joiner whose queries die (lossless here, but the only neighbour IS
     the source, which answers immediately) still ends up attached. *)
  let g = Fixtures.line 3 in
  let engine = Engine.create () in
  let config =
    { Protocol.default_config with Protocol.join_mode = Protocol.Query_scheme; query_timeout = 0.5 }
  in
  let p = Protocol.create ~config engine g ~source:0 in
  Protocol.start p;
  ignore (Engine.schedule engine ~delay:0.5 (fun () -> Protocol.join p 2));
  Engine.run ~until:20.0 engine;
  let r = List.find (fun r -> r.Protocol.member = 2) (Protocol.reports p) in
  check "attached and served" true (r.Protocol.data_received > 100)

let simulation_deterministic () =
  (* Two identical runs must agree event for event. *)
  let run () =
    let engine = Engine.create () in
    let g = Fixtures.ring 6 in
    let p = Protocol.create engine g ~source:0 in
    Protocol.start p;
    ignore (Engine.schedule engine ~delay:0.5 (fun () -> Protocol.join p 3));
    ignore (Engine.schedule engine ~delay:1.5 (fun () -> Protocol.join p 4));
    Engine.run ~until:20.0 engine;
    Protocol.inject_link_failure p (edge g 0 1);
    Engine.run ~until:60.0 engine;
    ( Protocol.message_breakdown p,
      List.map
        (fun (r : Protocol.member_report) -> (r.Protocol.member, r.Protocol.data_received, r.Protocol.restored))
        (Protocol.reports p) )
  in
  check "identical runs" true (run () = run ())

let join_errors () =
  let engine = Engine.create () in
  let g = Fixtures.line 3 in
  let p = Protocol.create engine g ~source:0 in
  Alcotest.check_raises "source join" (Invalid_argument "Protocol.join: the source cannot join")
    (fun () -> Protocol.join p 0);
  Protocol.join p 2;
  Alcotest.check_raises "double join" (Invalid_argument "Protocol.join: already a member")
    (fun () -> Protocol.join p 2)

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "time order" `Quick events_fire_in_time_order;
          Alcotest.test_case "fifo on ties" `Quick equal_times_fifo;
          Alcotest.test_case "cancel" `Quick cancel_prevents_firing;
          Alcotest.test_case "nested scheduling" `Quick nested_scheduling;
          Alcotest.test_case "run until" `Quick run_until_stops;
          Alcotest.test_case "every cancellable" `Quick every_cancellable;
          Alcotest.test_case "rejects past/negative" `Quick rejects_past_and_negative;
          Alcotest.test_case "every with jitter" `Quick every_with_jitter;
          Alcotest.test_case "zero-delay self-reschedule" `Quick zero_delay_self_reschedule;
          Alcotest.test_case "far-future overflow cascade" `Quick far_future_overflow_cascade;
          Alcotest.test_case "recycled handle cancel" `Quick cancel_of_recycled_handle_is_noop;
          Alcotest.test_case "tick rounding at bucket boundaries" `Quick
            tick_rounding_at_bucket_boundaries;
          Alcotest.test_case "queue depth counts live only" `Quick queue_depth_counts_live_only;
          Alcotest.test_case "wheel matches reference" `Quick wheel_matches_reference_engine;
        ] );
      ( "net",
        [
          Alcotest.test_case "frames arrive after delay" `Quick frames_arrive_after_link_delay;
          Alcotest.test_case "failed link drops" `Quick failed_link_drops;
          Alcotest.test_case "in-flight frames die" `Quick in_flight_frames_die_with_the_link;
          Alcotest.test_case "failure drops counted separately" `Quick failure_drops_counted_separately;
          Alcotest.test_case "failed node blocks" `Quick failed_node_blocks;
          Alcotest.test_case "non-adjacent rejected" `Quick non_adjacent_send_rejected;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "data flows to member" `Quick data_flows_to_member;
          Alcotest.test_case "leave stops data" `Quick leave_stops_data;
          Alcotest.test_case "local recovery beats global" `Quick local_recovery_beats_global;
          Alcotest.test_case "messages counted" `Quick control_and_data_counted;
          Alcotest.test_case "join errors" `Quick join_errors;
          Alcotest.test_case "lossy links counted" `Quick lossy_links_counted;
          Alcotest.test_case "soft state survives loss" `Quick soft_state_survives_loss;
          Alcotest.test_case "query-scheme join" `Quick query_scheme_join_flows;
          Alcotest.test_case "query-scheme fallback" `Quick query_scheme_falls_back;
          Alcotest.test_case "protocol-level reshaping" `Quick reshaping_switches_at_protocol_level;
          Alcotest.test_case "simulation deterministic" `Quick simulation_deterministic;
        ] );
    ]
