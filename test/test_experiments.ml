(* Experiment drivers: determinism and sanity of the figure pipelines at
   reduced scale (full-scale runs live in bench/main.exe). *)

module Scenario = Smrp_experiments.Scenario
module Figures = Smrp_experiments.Figures
module Latency = Smrp_experiments.Latency
module Ablation = Smrp_experiments.Ablation
module Stats = Smrp_metrics.Stats
module Tree = Smrp_core.Tree
module Pool = Smrp_experiments.Pool
module Metrics = Smrp_obs.Metrics
module Trace = Smrp_obs.Trace
module Profile = Smrp_obs.Profile

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let scenario_deterministic () =
  let a = Scenario.run { Scenario.default with Scenario.seed = 9 } in
  let b = Scenario.run { Scenario.default with Scenario.seed = 9 } in
  check "same source" true (a.Scenario.source = b.Scenario.source);
  check "same members" true (a.Scenario.members = b.Scenario.members);
  check "same aggregates" true (Scenario.aggregates a = Scenario.aggregates b)

let scenario_shapes () =
  let s = Scenario.run { Scenario.default with Scenario.seed = 4 } in
  check_int "group size" 30 (List.length s.Scenario.members);
  check_int "outcome per member" 30 (List.length s.Scenario.outcomes);
  check "source not member" true (not (List.mem s.Scenario.source s.Scenario.members));
  check "trees validate" true
    (Tree.validate s.Scenario.spf_tree = Ok () && Tree.validate s.Scenario.smrp_tree = Ok ());
  check "positive costs" true (s.Scenario.cost_spf > 0.0 && s.Scenario.cost_smrp > 0.0);
  let a = Scenario.aggregates s in
  check "cost penalty sane" true (a.Scenario.cost_relative > -0.5 && a.Scenario.cost_relative < 1.0)

let scenario_rejects_oversized_group () =
  Alcotest.check_raises "too big" (Invalid_argument "Scenario.run: group larger than network")
    (fun () -> ignore (Scenario.run { Scenario.default with Scenario.n = 10; group_size = 10 }))

let fig7_smoke () =
  let r = Figures.Fig7.run ~seed:1 ~topologies:2 () in
  check "points exist" true (List.length r.Figures.Fig7.points > 20);
  check "local never worse" true
    (1.0 -. r.Figures.Fig7.below_diagonal_fraction -. r.Figures.Fig7.on_diagonal_fraction < 0.01);
  check "renders" true (String.length (Figures.Fig7.render r) > 100)

let fig8_smoke () =
  let rows = Figures.Fig8.run ~seed:1 ~values:[ 0.1; 0.4 ] ~scenarios:8 () in
  check_int "two rows" 2 (List.length rows);
  let r01 = List.hd rows and r04 = List.nth rows 1 in
  check "penalty grows with threshold" true
    (r04.Figures.Fig8.delay.Stats.mean >= r01.Figures.Fig8.delay.Stats.mean);
  check "renders" true (String.length (Figures.Fig8.render rows) > 100)

let fig9_smoke () =
  let rows = Figures.Fig9.run ~seed:1 ~values:[ 0.15; 0.3 ] ~scenarios:8 ~degree_ten_row:false () in
  check_int "two rows" 2 (List.length rows);
  check "degree grows with alpha" true
    ((List.nth rows 1).Figures.Fig9.average_degree > (List.hd rows).Figures.Fig9.average_degree)

let fig10_smoke () =
  let rows = Figures.Fig10.run ~seed:1 ~values:[ 20; 40 ] ~scenarios:8 () in
  check_int "two rows" 2 (List.length rows);
  check "renders" true (String.length (Figures.Fig10.render rows) > 100)

let fig9_parallel_identical_snapshot () =
  (* The satellite-2 determinism check: a figure run on 1 domain and on 4
     must agree on the rendering AND on the merged metrics snapshot — not
     just on what is printed.  Fig. 9 uses the default [`Unit] link metric,
     so every observed value is an integer and the equality is exact. *)
  let leg jobs =
    let metrics = Metrics.create () in
    let rows =
      Figures.Fig9.run ~jobs ~metrics ~seed:9 ~values:[ 0.2; 0.3 ] ~scenarios:6
        ~degree_ten_row:false ()
    in
    (Figures.Fig9.render rows, Metrics.snapshot metrics)
  in
  let render_seq, snap_seq = leg 1 in
  let render_par, snap_par = leg 4 in
  check "renderings identical" true (String.equal render_seq render_par);
  check "merged snapshots identical" true (snap_seq = snap_par);
  (* The snapshot is non-trivial: 12 scenarios of 30 members each. *)
  match List.assoc_opt "scenario.members" snap_par with
  | Some (Metrics.Counter_value n) -> check_int "members counted" 360 n
  | _ -> Alcotest.fail "scenario.members missing"

let pool_profile_and_trace_hooks () =
  (* Pool.map with instrumentation live: worker task totals must equal the
     input size, every task span must appear in the stitched trace exactly
     once, and the mapped result must be unaffected. *)
  let profile = Profile.create () in
  let sink = Trace.sharded_ring ~capacity:4096 in
  let tracer = Trace.create sink in
  let xs = List.init 23 Fun.id in
  let ys =
    Pool.with_instrumentation ~profile ~trace:tracer (fun () ->
        Pool.map ~jobs:3 (fun x -> x * x) xs)
  in
  check "results unaffected" true (ys = List.map (fun x -> x * x) xs);
  let workers = Profile.workers profile in
  check_int "one record per worker domain" 3 (List.length workers);
  check_int "worker task totals cover the input" 23
    (List.fold_left (fun acc (w : Profile.worker) -> acc + w.Profile.tasks) 0 workers);
  List.iter
    (fun (w : Profile.worker) ->
      check "busy within lifetime" true (w.Profile.busy_s <= w.Profile.wall_s +. 1e-6))
    workers;
  let events = Trace.stitched_contents sink in
  let tasks = List.filter (fun e -> e.Trace.name = "pool.task") events in
  check_int "one span per task" 23 (List.length tasks);
  let indices =
    List.sort compare
      (List.filter_map
         (fun e ->
           match List.assoc_opt "index" e.Trace.args with
           | Some (Trace.Int i) -> Some i
           | _ -> None)
         tasks)
  in
  check "every index traced once" true (indices = xs);
  check_int "one worker span per domain" 3
    (List.length (List.filter (fun e -> e.Trace.name = "pool.worker") events));
  (* The ambient hooks are restored on exit: an uninstrumented map records
     nothing new. *)
  ignore (Pool.map ~jobs:2 Fun.id [ 1; 2; 3 ]);
  check_int "ambient hooks restored" 3 (List.length (Profile.workers profile))

let latency_smoke () =
  let cfg = { Latency.default with Latency.settle_time = 40.0; run_time = 30.0 } in
  let results = Latency.run_many ~seed:3 ~runs:2 cfg in
  check "two runs" true (List.length results = 2);
  List.iter
    (fun r ->
      if r.Latency.smrp.Latency.restored > 0 && r.Latency.pim.Latency.restored > 0 then
        check "local restores faster" true
          (r.Latency.smrp.Latency.mean_restoration < r.Latency.pim.Latency.mean_restoration))
    results;
  check "renders" true (String.length (Latency.render results) > 100)

let ablation_reshaping_smoke () =
  let r = Ablation.Reshaping.run ~seed:2 ~scenarios:6 () in
  check "switches happen" true (r.Ablation.Reshaping.switches_per_scenario > 0.0);
  check "renders" true (String.length (Ablation.Reshaping.render r) > 50)

let ablation_query_smoke () =
  let r = Ablation.Query.run ~seed:2 ~scenarios:6 () in
  check "query keeps only part of the gain" true
    (r.Ablation.Query.rd_query.Stats.mean <= r.Ablation.Query.rd_full.Stats.mean +. 0.1);
  check "renders" true (String.length (Ablation.Query.render r) > 50)

let overhead_smoke () =
  let r = Smrp_experiments.Overhead.run ~members:8 ~sim_time:40.0 () in
  let open Smrp_experiments.Overhead in
  check "hello baseline identical" true (r.smrp.hello = r.pim.hello);
  check "joins signalled" true (r.smrp.join_req > 0 && r.pim.join_req > 0);
  check "join overhead comparable (within 3x)" true
    (r.smrp.join_req < 3 * r.pim.join_req && r.pim.join_req < 3 * r.smrp.join_req);
  check "renders" true (String.length (render r) > 80)

let ablation_hierarchy_smoke () =
  let r = Ablation.Hierarchical.run ~seed:2 ~scenarios:3 () in
  check "confined" true (r.Ablation.Hierarchical.confined_fraction = 1.0);
  check "failures measured" true (r.Ablation.Hierarchical.failures > 0);
  check "renders" true (String.length (Ablation.Hierarchical.render r) > 50)

let () =
  Alcotest.run "experiments"
    [
      ( "scenario",
        [
          Alcotest.test_case "deterministic" `Quick scenario_deterministic;
          Alcotest.test_case "shapes" `Quick scenario_shapes;
          Alcotest.test_case "rejects oversized group" `Quick scenario_rejects_oversized_group;
        ] );
      ( "figures",
        [
          Alcotest.test_case "fig7" `Quick fig7_smoke;
          Alcotest.test_case "fig8" `Quick fig8_smoke;
          Alcotest.test_case "fig9" `Quick fig9_smoke;
          Alcotest.test_case "fig10" `Quick fig10_smoke;
        ] );
      ( "observability",
        [
          Alcotest.test_case "fig9 seq/par identical snapshot" `Quick
            fig9_parallel_identical_snapshot;
          Alcotest.test_case "pool profile and trace hooks" `Quick pool_profile_and_trace_hooks;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "latency" `Slow latency_smoke;
          Alcotest.test_case "reshaping ablation" `Quick ablation_reshaping_smoke;
          Alcotest.test_case "query ablation" `Quick ablation_query_smoke;
          Alcotest.test_case "hierarchy ablation" `Quick ablation_hierarchy_smoke;
          Alcotest.test_case "overhead" `Quick overhead_smoke;
        ] );
    ]
