(* Streaming large-n generators (Topology.Scale) and the session-level
   protection fast path.  The generators are exercised at reduced n — the
   10^5/10^6 draws run in the CLI sweep and CI smoke — but through exactly
   the same grid-bucketed code paths; the protection test pins the
   table-lookup repairs to the candidate search they precompute. *)

module Rng = Smrp_rng.Rng
module Graph = Smrp_graph.Graph
module Connectivity = Smrp_graph.Connectivity
module Scale = Smrp_topology.Scale
module Transit_stub = Smrp_topology.Transit_stub
module Tree = Smrp_core.Tree
module Session = Smrp_core.Session
module Failure = Smrp_core.Failure
module Recovery = Smrp_core.Recovery

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let waxman_connected () =
  let rng = Rng.create 7 in
  let n = 5_000 in
  let alpha, beta = Scale.degree_params ~n ~target_degree:8.0 in
  let t = Scale.waxman rng ~n ~alpha ~beta in
  let g = t.Scale.graph in
  check_int "node count" n (Graph.node_count g);
  let _, count = Connectivity.components g in
  check_int "single component" 1 count;
  let d = Graph.average_degree g in
  check "degree near target" true (d > 5.0 && d < 11.0);
  check "truncation bound harmless" true (t.Scale.missed_edge_bound < 1.0)

let waxman_deterministic () =
  let draw () =
    let rng = Rng.create 11 in
    let alpha, beta = Scale.degree_params ~n:2_000 ~target_degree:6.0 in
    (Scale.waxman rng ~n:2_000 ~alpha ~beta).Scale.graph
  in
  let a = draw () and b = draw () in
  check_int "same edge count" (Graph.edge_count a) (Graph.edge_count b);
  for eid = 0 to min 99 (Graph.edge_count a - 1) do
    let ea = Graph.edge a eid and eb = Graph.edge b eid in
    check_int "same u" ea.Graph.u eb.Graph.u;
    check_int "same v" ea.Graph.v eb.Graph.v
  done

let transit_stub_connected () =
  let rng = Rng.create 13 in
  let ts = Scale.transit_stub rng Transit_stub.default_params in
  let g = ts.Scale.ts_graph in
  check "has nodes" true (Graph.node_count g > 0);
  let _, count = Connectivity.components g in
  check_int "single component" 1 count

(* Two sessions on the same topology with the same join order build the
   same tree; failing the same tree edge must then save exactly the same
   members whether the detour comes from the protection tables or the
   search.  The repair *granularity* legitimately differs — the table
   answer re-attaches a whole orphaned branch with one detour where the
   search repairs member by member — so the comparison is on outcomes
   (surviving members, valid tree), with the per-detour merge/RD
   equivalence pinned by the fuzz oracle's branch-detour differential. *)
let protection_matches_search () =
  let rng = Rng.create 21 in
  let n = 300 in
  let alpha, beta = Scale.degree_params ~n ~target_degree:6.0 in
  let g = (Scale.waxman rng ~n ~alpha ~beta).Scale.graph in
  let members =
    List.sort_uniq compare (List.init 24 (fun _ -> 1 + Rng.int rng (n - 1)))
  in
  let session ~protection =
    let s = Session.create ~protection g ~source:0 ~protocol:(Session.Smrp { d_thresh = 0.3 }) in
    List.iter (Session.join s) members;
    s
  in
  let probe = session ~protection:false in
  let tree = Session.tree probe in
  let eids =
    List.filter_map
      (fun m ->
        if Tree.is_on_tree tree m && m <> 0 then
          let e = Tree.parent_edge_id tree m in
          if e >= 0 then Some e else None
        else None)
      members
  in
  let eids =
    let rec take k = function x :: r when k > 0 -> x :: take (k - 1) r | _ -> [] in
    take 5 (List.sort_uniq compare eids)
  in
  check "found tree edges to fail" true (eids <> []);
  let any_protected = ref false in
  List.iter
    (fun eid ->
      let sp = session ~protection:true and ss = session ~protection:false in
      let rp = Session.fail sp (Failure.Link eid) in
      let rs = Session.fail ss (Failure.Link eid) in
      let survivors s = List.sort compare (Tree.members (Session.tree s)) in
      Alcotest.(check (list int))
        (Printf.sprintf "edge %d: same surviving members" eid)
        (survivors ss) (survivors sp);
      (match Tree.validate (Session.tree sp) with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "edge %d: protected tree invalid: %s" eid msg);
      check
        (Printf.sprintf "edge %d: search repaired iff tables repaired" eid)
        true
        ((rs = []) = (rp = []));
      (* The fast path is all-or-nothing per failure: a batch is never a
         mix of table-lookup and searched repairs. *)
      let protected_n =
        List.length (List.filter (fun r -> r.Session.strategy = `Protected) rp)
      in
      check "all-or-nothing" true (protected_n = 0 || protected_n = List.length rp);
      if protected_n > 0 then any_protected := true)
    eids;
  check "at least one failure answered from the tables" true !any_protected

let () =
  Alcotest.run "scale"
    [
      ( "generators",
        [
          Alcotest.test_case "waxman connected at 5k" `Quick waxman_connected;
          Alcotest.test_case "waxman deterministic" `Quick waxman_deterministic;
          Alcotest.test_case "transit-stub connected" `Quick transit_stub_connected;
        ] );
      ( "protection",
        [
          Alcotest.test_case "table repairs match search" `Quick protection_matches_search;
        ] );
    ]
