(* The worked examples of the paper, asserted step by step:
   - Figure 1: SPF tree over {C, D}; SHR values; local vs global detour when
     L_AD fails.
   - Figure 4: E, G, F join under SMRP with D_thresh = 0.3 and pick the
     paths the text walks through.
   - Figure 5: F's admission triggers reshaping at E, which switches to
     E-C-A-S. *)

module Fixtures = Smrp_topology.Fixtures
module Graph = Smrp_graph.Graph
module Tree = Smrp_core.Tree
module Spf = Smrp_core.Spf
module Smrp = Smrp_core.Smrp
module Reshape = Smrp_core.Reshape
module Failure = Smrp_core.Failure
module Recovery = Smrp_core.Recovery

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let check_list = Alcotest.(check (list int))

let edge_id g u v =
  match Graph.edge_between g u v with
  | Some e -> e.Graph.id
  | None -> Alcotest.fail "expected edge"

(* -- Figure 1 ---------------------------------------------------------- *)

let fig1_spf_tree () =
  let f = Fixtures.fig1 () in
  let t = Spf.build f.Fixtures.graph ~source:f.Fixtures.s ~members:[ f.Fixtures.c; f.Fixtures.d ] in
  (match Tree.validate t with Ok () -> () | Error e -> Alcotest.fail e);
  (* Both members reach S through A, as drawn in Fig. 1(a). *)
  check_list "C's path" [ f.Fixtures.c; f.Fixtures.a; f.Fixtures.s ] (Tree.path_to_source t f.Fixtures.c);
  check_list "D's path" [ f.Fixtures.d; f.Fixtures.a; f.Fixtures.s ] (Tree.path_to_source t f.Fixtures.d)

let fig1_shr () =
  let f = Fixtures.fig1 () in
  let t = Spf.build f.Fixtures.graph ~source:f.Fixtures.s ~members:[ f.Fixtures.c; f.Fixtures.d ] in
  (* SHR(S,C) = N_A + N_C = 2 + 1 = 3, the worked example below Eq. (1). *)
  check_int "SHR(S,C)" 3 (Tree.shr t f.Fixtures.c);
  check_int "SHR(S,D)" 3 (Tree.shr t f.Fixtures.d);
  check_int "SHR(S,A)" 2 (Tree.shr t f.Fixtures.a);
  check_int "SHR(S,S)" 0 (Tree.shr t f.Fixtures.s)

let fig1_detours () =
  let f = Fixtures.fig1 () in
  let g = f.Fixtures.graph in
  let t = Spf.build g ~source:f.Fixtures.s ~members:[ f.Fixtures.c; f.Fixtures.d ] in
  let fail = Failure.Link (edge_id g f.Fixtures.a f.Fixtures.d) in
  (* Local detour: D re-attaches at C over L_CD, so RD_D = 2 (§3.1). *)
  let local = Option.get (Recovery.local_detour t fail ~member:f.Fixtures.d) in
  check_int "local merge is C" f.Fixtures.c local.Recovery.merge;
  check_float "RD_D = 2" 2.0 local.Recovery.recovery_distance;
  check_float "local e2e delay" 4.0 local.Recovery.new_total_delay;
  (* Global detour: the new SPF path D-B-S is entirely new links, RD = 3,
     but the end-to-end delay is the smaller 3. *)
  let global = Option.get (Recovery.global_detour t fail ~member:f.Fixtures.d) in
  check_int "global merge is S" f.Fixtures.s global.Recovery.merge;
  check_list "global path" [ f.Fixtures.d; f.Fixtures.b; f.Fixtures.s ] global.Recovery.path_nodes;
  check_float "global RD = 3" 3.0 global.Recovery.recovery_distance;
  check_float "global e2e delay" 3.0 global.Recovery.new_total_delay;
  check "local detour is shorter" true
    (local.Recovery.recovery_distance < global.Recovery.recovery_distance)

(* -- Figure 4 ---------------------------------------------------------- *)

let build_fig4_tree f =
  let t = Tree.create f.Fixtures.graph ~source:f.Fixtures.s in
  Smrp.join ~d_thresh:0.3 t f.Fixtures.e;
  Smrp.join ~d_thresh:0.3 t f.Fixtures.g;
  Smrp.join ~d_thresh:0.3 t f.Fixtures.f;
  t

let fig4_e_joins_shortest () =
  let f = Fixtures.fig4 () in
  let t = Tree.create f.Fixtures.graph ~source:f.Fixtures.s in
  Smrp.join ~d_thresh:0.3 t f.Fixtures.e;
  (* "The join procedure of E is trivial, and it selects the shortest path". *)
  check_list "E's path" [ f.Fixtures.e; f.Fixtures.d; f.Fixtures.a; f.Fixtures.s ]
    (Tree.path_to_source t f.Fixtures.e);
  (* "node D has SHR(S,D) = 2". *)
  check_int "SHR(S,D) after E" 2 (Tree.shr t f.Fixtures.d)

let fig4_g_avoids_sharing () =
  let f = Fixtures.fig4 () in
  let t = Tree.create f.Fixtures.graph ~source:f.Fixtures.s in
  Smrp.join ~d_thresh:0.3 t f.Fixtures.e;
  Smrp.join ~d_thresh:0.3 t f.Fixtures.g;
  (* "G chooses path G→B→S even though G→F→D→A→S has shorter end-to-end
     delay." *)
  check_list "G's path" [ f.Fixtures.g; f.Fixtures.b; f.Fixtures.s ]
    (Tree.path_to_source t f.Fixtures.g)

let fig4_f_bounded_by_dthresh () =
  let f = Fixtures.fig4 () in
  let t = build_fig4_tree f in
  (* "Receiver F selects F→D→A→S.  F does not choose F→B→S and F→G→B→S
     because their path lengths exceed the bound." *)
  check_list "F's path" [ f.Fixtures.f; f.Fixtures.d; f.Fixtures.a; f.Fixtures.s ]
    (Tree.path_to_source t f.Fixtures.f);
  (* Condition I's example: SHR(S,D) rose from 2 to 4 when F joined. *)
  check_int "SHR(S,D) after F" 4 (Tree.shr t f.Fixtures.d);
  match Tree.validate t with Ok () -> () | Error e -> Alcotest.fail e

let fig4_f_candidates_pinned () =
  (* Pin the full candidate list F computes after E and G have joined: the
     merge points the text enumerates (D, B and G), in ascending merge-id
     order, with every field of the record.  Guards the optimised
     candidate search against silent changes in order or content. *)
  let f = Fixtures.fig4 () in
  let g = f.Fixtures.graph in
  let t = Tree.create g ~source:f.Fixtures.s in
  Smrp.join ~d_thresh:0.3 t f.Fixtures.e;
  Smrp.join ~d_thresh:0.3 t f.Fixtures.g;
  let cands = Smrp.candidates t ~joiner:f.Fixtures.f in
  check_list "merge points, ascending"
    [ f.Fixtures.b; f.Fixtures.d; f.Fixtures.g ]
    (List.map (fun c -> c.Smrp.merge) cands);
  let pin name c ~merge ~other ~attach_delay ~total_delay ~shr =
    check_int (name ^ " merge") merge c.Smrp.merge;
    check_list (name ^ " attach nodes") [ merge; f.Fixtures.f ] c.Smrp.attach_nodes;
    check_list (name ^ " attach edges") [ edge_id g merge other ] c.Smrp.attach_edges;
    check_float (name ^ " attach delay") attach_delay c.Smrp.attach_delay;
    check_float (name ^ " total delay") total_delay c.Smrp.total_delay;
    check_int (name ^ " shr") shr c.Smrp.shr
  in
  (match cands with
  | [ cb; cd; cg ] ->
      (* B: one hop over L_BF; delay to S is 2.5; only G shares S-B. *)
      pin "B" cb ~merge:f.Fixtures.b ~other:f.Fixtures.f ~attach_delay:1.5 ~total_delay:4.0
        ~shr:1;
      (* D: one hop over L_DF; SHR(S,D) = 2 after E joined. *)
      pin "D" cd ~merge:f.Fixtures.d ~other:f.Fixtures.f ~attach_delay:1.0 ~total_delay:3.0
        ~shr:2;
      (* G: one hop over L_FG; G's own path G-B-S gives delay 4.5. *)
      pin "G" cg ~merge:f.Fixtures.g ~other:f.Fixtures.f ~attach_delay:1.0 ~total_delay:5.5
        ~shr:2
  | _ -> Alcotest.fail "expected exactly three candidates")

let fig4_f_would_take_b_with_larger_threshold () =
  (* Sanity check of the bound's role: with a permissive D_thresh, F prefers
     the less-shared merge point B (SHR 1 < 2). *)
  let f = Fixtures.fig4 () in
  let t = Tree.create f.Fixtures.graph ~source:f.Fixtures.s in
  Smrp.join ~d_thresh:1.0 t f.Fixtures.e;
  Smrp.join ~d_thresh:1.0 t f.Fixtures.g;
  Smrp.join ~d_thresh:1.0 t f.Fixtures.f;
  check_list "F's path under D_thresh = 1"
    [ f.Fixtures.f; f.Fixtures.b; f.Fixtures.s ]
    (Tree.path_to_source t f.Fixtures.f)

(* -- Figure 5 ---------------------------------------------------------- *)

let fig5_reshaping_at_e () =
  let f = Fixtures.fig4 () in
  let t = build_fig4_tree f in
  (* Condition I detects the SHR drift at E (its upstream SHR grew by 2 when
     F joined). *)
  let m = Reshape.monitor (Tree.create f.Fixtures.graph ~source:f.Fixtures.s) in
  ignore m;
  let switched = Reshape.try_reshape ~d_thresh:0.3 t f.Fixtures.e in
  check "E switches" true switched;
  (* "E completes another path selection process by selecting E→C→A→S." *)
  check_list "E's new path"
    [ f.Fixtures.e; f.Fixtures.c; f.Fixtures.a; f.Fixtures.s ]
    (Tree.path_to_source t f.Fixtures.e);
  (match Tree.validate t with Ok () -> () | Error e -> Alcotest.fail e);
  (* After the switch the old relay D keeps only F downstream. *)
  check_int "N_D after reshape" 1 (Tree.subtree_members t f.Fixtures.d);
  check_int "SHR(S,D) after reshape" 3 (Tree.shr t f.Fixtures.d)

let fig5_condition_i_monitor () =
  let f = Fixtures.fig4 () in
  let t = Tree.create f.Fixtures.graph ~source:f.Fixtures.s in
  Smrp.join ~d_thresh:0.3 t f.Fixtures.e;
  Smrp.join ~d_thresh:0.3 t f.Fixtures.g;
  let m = Reshape.monitor t in
  Smrp.join ~d_thresh:0.3 t f.Fixtures.f;
  (* F's admission raises SHR(S,E) from 2 to 4: drift of 2 > threshold 1. *)
  let triggered = Reshape.drifted m t ~threshold:1 in
  check "E drifts" true (List.mem f.Fixtures.e triggered);
  let switches = Reshape.run_condition_i ~d_thresh:0.3 ~threshold:1 m t in
  check "condition I switches E" true (switches >= 1);
  check_list "E's new path"
    [ f.Fixtures.e; f.Fixtures.c; f.Fixtures.a; f.Fixtures.s ]
    (Tree.path_to_source t f.Fixtures.e)

let () =
  Alcotest.run "paper_examples"
    [
      ( "figure1",
        [
          Alcotest.test_case "SPF tree shape" `Quick fig1_spf_tree;
          Alcotest.test_case "SHR worked example" `Quick fig1_shr;
          Alcotest.test_case "local vs global detour" `Quick fig1_detours;
        ] );
      ( "figure4",
        [
          Alcotest.test_case "E joins by shortest path" `Quick fig4_e_joins_shortest;
          Alcotest.test_case "G avoids the shared subtree" `Quick fig4_g_avoids_sharing;
          Alcotest.test_case "F is bounded by D_thresh" `Quick fig4_f_bounded_by_dthresh;
          Alcotest.test_case "F's candidate list pinned" `Quick fig4_f_candidates_pinned;
          Alcotest.test_case "larger D_thresh frees F" `Quick fig4_f_would_take_b_with_larger_threshold;
        ] );
      ( "figure5",
        [
          Alcotest.test_case "reshaping switches E to C" `Quick fig5_reshaping_at_e;
          Alcotest.test_case "condition I monitor" `Quick fig5_condition_i_monitor;
        ] );
    ]
